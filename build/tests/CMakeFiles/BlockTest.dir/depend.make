# Empty dependencies file for BlockTest.
# This may be replaced when dependencies are built.
