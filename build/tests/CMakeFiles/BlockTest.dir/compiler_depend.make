# Empty compiler generated dependencies file for BlockTest.
# This may be replaced when dependencies are built.
