# Empty compiler generated dependencies file for OsTest.
# This may be replaced when dependencies are built.
