file(REMOVE_RECURSE
  "CMakeFiles/OsTest.dir/OsTest.cpp.o"
  "CMakeFiles/OsTest.dir/OsTest.cpp.o.d"
  "OsTest"
  "OsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
