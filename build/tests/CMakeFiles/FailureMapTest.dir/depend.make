# Empty dependencies file for FailureMapTest.
# This may be replaced when dependencies are built.
