file(REMOVE_RECURSE
  "CMakeFiles/FailureMapTest.dir/FailureMapTest.cpp.o"
  "CMakeFiles/FailureMapTest.dir/FailureMapTest.cpp.o.d"
  "FailureMapTest"
  "FailureMapTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FailureMapTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
