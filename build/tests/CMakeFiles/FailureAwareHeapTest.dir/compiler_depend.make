# Empty compiler generated dependencies file for FailureAwareHeapTest.
# This may be replaced when dependencies are built.
