file(REMOVE_RECURSE
  "CMakeFiles/FailureAwareHeapTest.dir/FailureAwareHeapTest.cpp.o"
  "CMakeFiles/FailureAwareHeapTest.dir/FailureAwareHeapTest.cpp.o.d"
  "FailureAwareHeapTest"
  "FailureAwareHeapTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FailureAwareHeapTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
