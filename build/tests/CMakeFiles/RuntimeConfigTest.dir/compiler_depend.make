# Empty compiler generated dependencies file for RuntimeConfigTest.
# This may be replaced when dependencies are built.
