# Empty dependencies file for RuntimeConfigTest.
# This may be replaced when dependencies are built.
