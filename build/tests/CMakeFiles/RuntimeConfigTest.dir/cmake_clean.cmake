file(REMOVE_RECURSE
  "CMakeFiles/RuntimeConfigTest.dir/RuntimeConfigTest.cpp.o"
  "CMakeFiles/RuntimeConfigTest.dir/RuntimeConfigTest.cpp.o.d"
  "RuntimeConfigTest"
  "RuntimeConfigTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RuntimeConfigTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
