# Empty compiler generated dependencies file for ImmixSpaceTest.
# This may be replaced when dependencies are built.
