file(REMOVE_RECURSE
  "CMakeFiles/ImmixSpaceTest.dir/ImmixSpaceTest.cpp.o"
  "CMakeFiles/ImmixSpaceTest.dir/ImmixSpaceTest.cpp.o.d"
  "ImmixSpaceTest"
  "ImmixSpaceTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ImmixSpaceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
