# Empty dependencies file for HeapGcTest.
# This may be replaced when dependencies are built.
