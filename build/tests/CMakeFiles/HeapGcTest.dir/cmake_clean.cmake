file(REMOVE_RECURSE
  "CMakeFiles/HeapGcTest.dir/HeapGcTest.cpp.o"
  "CMakeFiles/HeapGcTest.dir/HeapGcTest.cpp.o.d"
  "HeapGcTest"
  "HeapGcTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/HeapGcTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
