file(REMOVE_RECURSE
  "CMakeFiles/DiscontiguousArrayTest.dir/DiscontiguousArrayTest.cpp.o"
  "CMakeFiles/DiscontiguousArrayTest.dir/DiscontiguousArrayTest.cpp.o.d"
  "DiscontiguousArrayTest"
  "DiscontiguousArrayTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DiscontiguousArrayTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
