# Empty dependencies file for DiscontiguousArrayTest.
# This may be replaced when dependencies are built.
