file(REMOVE_RECURSE
  "CMakeFiles/FailureBufferTest.dir/FailureBufferTest.cpp.o"
  "CMakeFiles/FailureBufferTest.dir/FailureBufferTest.cpp.o.d"
  "FailureBufferTest"
  "FailureBufferTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FailureBufferTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
