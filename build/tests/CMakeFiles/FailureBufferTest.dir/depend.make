# Empty dependencies file for FailureBufferTest.
# This may be replaced when dependencies are built.
