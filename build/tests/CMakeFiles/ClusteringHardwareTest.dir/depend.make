# Empty dependencies file for ClusteringHardwareTest.
# This may be replaced when dependencies are built.
