file(REMOVE_RECURSE
  "CMakeFiles/ClusteringHardwareTest.dir/ClusteringHardwareTest.cpp.o"
  "CMakeFiles/ClusteringHardwareTest.dir/ClusteringHardwareTest.cpp.o.d"
  "ClusteringHardwareTest"
  "ClusteringHardwareTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ClusteringHardwareTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
