file(REMOVE_RECURSE
  "CMakeFiles/PcmDeviceTest.dir/PcmDeviceTest.cpp.o"
  "CMakeFiles/PcmDeviceTest.dir/PcmDeviceTest.cpp.o.d"
  "PcmDeviceTest"
  "PcmDeviceTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PcmDeviceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
