# Empty compiler generated dependencies file for PcmDeviceTest.
# This may be replaced when dependencies are built.
