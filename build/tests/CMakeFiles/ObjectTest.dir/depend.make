# Empty dependencies file for ObjectTest.
# This may be replaced when dependencies are built.
