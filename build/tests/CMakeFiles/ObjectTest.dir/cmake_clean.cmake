file(REMOVE_RECURSE
  "CMakeFiles/ObjectTest.dir/ObjectTest.cpp.o"
  "CMakeFiles/ObjectTest.dir/ObjectTest.cpp.o.d"
  "ObjectTest"
  "ObjectTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ObjectTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
