file(REMOVE_RECURSE
  "CMakeFiles/abl05_arraylets.dir/abl05_arraylets.cpp.o"
  "CMakeFiles/abl05_arraylets.dir/abl05_arraylets.cpp.o.d"
  "abl05_arraylets"
  "abl05_arraylets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_arraylets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
