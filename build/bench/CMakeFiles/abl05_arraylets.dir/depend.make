# Empty dependencies file for abl05_arraylets.
# This may be replaced when dependencies are built.
