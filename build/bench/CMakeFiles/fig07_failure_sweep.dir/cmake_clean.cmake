file(REMOVE_RECURSE
  "CMakeFiles/fig07_failure_sweep.dir/fig07_failure_sweep.cpp.o"
  "CMakeFiles/fig07_failure_sweep.dir/fig07_failure_sweep.cpp.o.d"
  "fig07_failure_sweep"
  "fig07_failure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_failure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
