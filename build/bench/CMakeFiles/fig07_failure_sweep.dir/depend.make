# Empty dependencies file for fig07_failure_sweep.
# This may be replaced when dependencies are built.
