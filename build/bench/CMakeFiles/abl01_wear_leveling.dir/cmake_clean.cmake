file(REMOVE_RECURSE
  "CMakeFiles/abl01_wear_leveling.dir/abl01_wear_leveling.cpp.o"
  "CMakeFiles/abl01_wear_leveling.dir/abl01_wear_leveling.cpp.o.d"
  "abl01_wear_leveling"
  "abl01_wear_leveling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_wear_leveling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
