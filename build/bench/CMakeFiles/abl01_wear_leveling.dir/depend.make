# Empty dependencies file for abl01_wear_leveling.
# This may be replaced when dependencies are built.
