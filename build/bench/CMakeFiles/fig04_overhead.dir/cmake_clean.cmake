file(REMOVE_RECURSE
  "CMakeFiles/fig04_overhead.dir/fig04_overhead.cpp.o"
  "CMakeFiles/fig04_overhead.dir/fig04_overhead.cpp.o.d"
  "fig04_overhead"
  "fig04_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
