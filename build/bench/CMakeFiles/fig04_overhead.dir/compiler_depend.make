# Empty compiler generated dependencies file for fig04_overhead.
# This may be replaced when dependencies are built.
