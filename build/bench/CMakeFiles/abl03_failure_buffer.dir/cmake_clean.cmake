file(REMOVE_RECURSE
  "CMakeFiles/abl03_failure_buffer.dir/abl03_failure_buffer.cpp.o"
  "CMakeFiles/abl03_failure_buffer.dir/abl03_failure_buffer.cpp.o.d"
  "abl03_failure_buffer"
  "abl03_failure_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_failure_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
