# Empty compiler generated dependencies file for abl03_failure_buffer.
# This may be replaced when dependencies are built.
