# Empty dependencies file for fig03_collectors.
# This may be replaced when dependencies are built.
