file(REMOVE_RECURSE
  "CMakeFiles/fig03_collectors.dir/fig03_collectors.cpp.o"
  "CMakeFiles/fig03_collectors.dir/fig03_collectors.cpp.o.d"
  "fig03_collectors"
  "fig03_collectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_collectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
