file(REMOVE_RECURSE
  "CMakeFiles/fig10_per_benchmark.dir/fig10_per_benchmark.cpp.o"
  "CMakeFiles/fig10_per_benchmark.dir/fig10_per_benchmark.cpp.o.d"
  "fig10_per_benchmark"
  "fig10_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
