# Empty compiler generated dependencies file for abl02_region_size.
# This may be replaced when dependencies are built.
