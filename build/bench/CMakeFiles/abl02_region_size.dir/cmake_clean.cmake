file(REMOVE_RECURSE
  "CMakeFiles/abl02_region_size.dir/abl02_region_size.cpp.o"
  "CMakeFiles/abl02_region_size.dir/abl02_region_size.cpp.o.d"
  "abl02_region_size"
  "abl02_region_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_region_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
