file(REMOVE_RECURSE
  "CMakeFiles/dyn01_dynamic_failures.dir/dyn01_dynamic_failures.cpp.o"
  "CMakeFiles/dyn01_dynamic_failures.dir/dyn01_dynamic_failures.cpp.o.d"
  "dyn01_dynamic_failures"
  "dyn01_dynamic_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn01_dynamic_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
