# Empty compiler generated dependencies file for dyn01_dynamic_failures.
# This may be replaced when dependencies are built.
