file(REMOVE_RECURSE
  "CMakeFiles/abl04_line_marking.dir/abl04_line_marking.cpp.o"
  "CMakeFiles/abl04_line_marking.dir/abl04_line_marking.cpp.o.d"
  "abl04_line_marking"
  "abl04_line_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_line_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
