# Empty compiler generated dependencies file for abl04_line_marking.
# This may be replaced when dependencies are built.
