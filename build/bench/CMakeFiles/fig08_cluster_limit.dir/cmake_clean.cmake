file(REMOVE_RECURSE
  "CMakeFiles/fig08_cluster_limit.dir/fig08_cluster_limit.cpp.o"
  "CMakeFiles/fig08_cluster_limit.dir/fig08_cluster_limit.cpp.o.d"
  "fig08_cluster_limit"
  "fig08_cluster_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cluster_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
