# Empty dependencies file for fig08_cluster_limit.
# This may be replaced when dependencies are built.
