# Empty dependencies file for fig05_compensation.
# This may be replaced when dependencies are built.
