file(REMOVE_RECURSE
  "CMakeFiles/fig05_compensation.dir/fig05_compensation.cpp.o"
  "CMakeFiles/fig05_compensation.dir/fig05_compensation.cpp.o.d"
  "fig05_compensation"
  "fig05_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
