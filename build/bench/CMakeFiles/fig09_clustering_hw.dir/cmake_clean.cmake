file(REMOVE_RECURSE
  "CMakeFiles/fig09_clustering_hw.dir/fig09_clustering_hw.cpp.o"
  "CMakeFiles/fig09_clustering_hw.dir/fig09_clustering_hw.cpp.o.d"
  "fig09_clustering_hw"
  "fig09_clustering_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_clustering_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
