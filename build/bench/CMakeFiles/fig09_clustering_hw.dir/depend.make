# Empty dependencies file for fig09_clustering_hw.
# This may be replaced when dependencies are built.
