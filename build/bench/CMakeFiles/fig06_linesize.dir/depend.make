# Empty dependencies file for fig06_linesize.
# This may be replaced when dependencies are built.
