file(REMOVE_RECURSE
  "CMakeFiles/fig06_linesize.dir/fig06_linesize.cpp.o"
  "CMakeFiles/fig06_linesize.dir/fig06_linesize.cpp.o.d"
  "fig06_linesize"
  "fig06_linesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
