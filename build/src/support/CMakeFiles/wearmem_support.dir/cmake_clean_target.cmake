file(REMOVE_RECURSE
  "libwearmem_support.a"
)
