file(REMOVE_RECURSE
  "CMakeFiles/wearmem_support.dir/Table.cpp.o"
  "CMakeFiles/wearmem_support.dir/Table.cpp.o.d"
  "libwearmem_support.a"
  "libwearmem_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
