# Empty compiler generated dependencies file for wearmem_support.
# This may be replaced when dependencies are built.
