
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/Block.cpp" "src/heap/CMakeFiles/wearmem_heap.dir/Block.cpp.o" "gcc" "src/heap/CMakeFiles/wearmem_heap.dir/Block.cpp.o.d"
  "/root/repo/src/heap/FreeListSpace.cpp" "src/heap/CMakeFiles/wearmem_heap.dir/FreeListSpace.cpp.o" "gcc" "src/heap/CMakeFiles/wearmem_heap.dir/FreeListSpace.cpp.o.d"
  "/root/repo/src/heap/ImmixSpace.cpp" "src/heap/CMakeFiles/wearmem_heap.dir/ImmixSpace.cpp.o" "gcc" "src/heap/CMakeFiles/wearmem_heap.dir/ImmixSpace.cpp.o.d"
  "/root/repo/src/heap/LargeObjectSpace.cpp" "src/heap/CMakeFiles/wearmem_heap.dir/LargeObjectSpace.cpp.o" "gcc" "src/heap/CMakeFiles/wearmem_heap.dir/LargeObjectSpace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/wearmem_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/wearmem_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wearmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
