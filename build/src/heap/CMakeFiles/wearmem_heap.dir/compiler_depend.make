# Empty compiler generated dependencies file for wearmem_heap.
# This may be replaced when dependencies are built.
