file(REMOVE_RECURSE
  "CMakeFiles/wearmem_heap.dir/Block.cpp.o"
  "CMakeFiles/wearmem_heap.dir/Block.cpp.o.d"
  "CMakeFiles/wearmem_heap.dir/FreeListSpace.cpp.o"
  "CMakeFiles/wearmem_heap.dir/FreeListSpace.cpp.o.d"
  "CMakeFiles/wearmem_heap.dir/ImmixSpace.cpp.o"
  "CMakeFiles/wearmem_heap.dir/ImmixSpace.cpp.o.d"
  "CMakeFiles/wearmem_heap.dir/LargeObjectSpace.cpp.o"
  "CMakeFiles/wearmem_heap.dir/LargeObjectSpace.cpp.o.d"
  "libwearmem_heap.a"
  "libwearmem_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
