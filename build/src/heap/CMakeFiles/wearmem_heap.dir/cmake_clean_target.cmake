file(REMOVE_RECURSE
  "libwearmem_heap.a"
)
