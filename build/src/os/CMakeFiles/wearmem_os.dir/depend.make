# Empty dependencies file for wearmem_os.
# This may be replaced when dependencies are built.
