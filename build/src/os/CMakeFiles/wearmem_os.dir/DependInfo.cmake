
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/Os.cpp" "src/os/CMakeFiles/wearmem_os.dir/Os.cpp.o" "gcc" "src/os/CMakeFiles/wearmem_os.dir/Os.cpp.o.d"
  "/root/repo/src/os/OsKernel.cpp" "src/os/CMakeFiles/wearmem_os.dir/OsKernel.cpp.o" "gcc" "src/os/CMakeFiles/wearmem_os.dir/OsKernel.cpp.o.d"
  "/root/repo/src/os/SwapManager.cpp" "src/os/CMakeFiles/wearmem_os.dir/SwapManager.cpp.o" "gcc" "src/os/CMakeFiles/wearmem_os.dir/SwapManager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcm/CMakeFiles/wearmem_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wearmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
