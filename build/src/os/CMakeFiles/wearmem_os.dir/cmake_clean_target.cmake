file(REMOVE_RECURSE
  "libwearmem_os.a"
)
