file(REMOVE_RECURSE
  "CMakeFiles/wearmem_os.dir/Os.cpp.o"
  "CMakeFiles/wearmem_os.dir/Os.cpp.o.d"
  "CMakeFiles/wearmem_os.dir/OsKernel.cpp.o"
  "CMakeFiles/wearmem_os.dir/OsKernel.cpp.o.d"
  "CMakeFiles/wearmem_os.dir/SwapManager.cpp.o"
  "CMakeFiles/wearmem_os.dir/SwapManager.cpp.o.d"
  "libwearmem_os.a"
  "libwearmem_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
