# Empty compiler generated dependencies file for wearmem_core.
# This may be replaced when dependencies are built.
