file(REMOVE_RECURSE
  "libwearmem_core.a"
)
