file(REMOVE_RECURSE
  "CMakeFiles/wearmem_core.dir/DiscontiguousArray.cpp.o"
  "CMakeFiles/wearmem_core.dir/DiscontiguousArray.cpp.o.d"
  "CMakeFiles/wearmem_core.dir/Runtime.cpp.o"
  "CMakeFiles/wearmem_core.dir/Runtime.cpp.o.d"
  "libwearmem_core.a"
  "libwearmem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
