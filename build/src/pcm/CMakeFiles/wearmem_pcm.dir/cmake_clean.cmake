file(REMOVE_RECURSE
  "CMakeFiles/wearmem_pcm.dir/ClusteringHardware.cpp.o"
  "CMakeFiles/wearmem_pcm.dir/ClusteringHardware.cpp.o.d"
  "CMakeFiles/wearmem_pcm.dir/FailureBuffer.cpp.o"
  "CMakeFiles/wearmem_pcm.dir/FailureBuffer.cpp.o.d"
  "CMakeFiles/wearmem_pcm.dir/FailureMap.cpp.o"
  "CMakeFiles/wearmem_pcm.dir/FailureMap.cpp.o.d"
  "CMakeFiles/wearmem_pcm.dir/PcmDevice.cpp.o"
  "CMakeFiles/wearmem_pcm.dir/PcmDevice.cpp.o.d"
  "CMakeFiles/wearmem_pcm.dir/WearSimulation.cpp.o"
  "CMakeFiles/wearmem_pcm.dir/WearSimulation.cpp.o.d"
  "libwearmem_pcm.a"
  "libwearmem_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
