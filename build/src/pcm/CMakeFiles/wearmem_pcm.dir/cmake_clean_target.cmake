file(REMOVE_RECURSE
  "libwearmem_pcm.a"
)
