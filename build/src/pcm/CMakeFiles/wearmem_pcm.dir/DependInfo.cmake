
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcm/ClusteringHardware.cpp" "src/pcm/CMakeFiles/wearmem_pcm.dir/ClusteringHardware.cpp.o" "gcc" "src/pcm/CMakeFiles/wearmem_pcm.dir/ClusteringHardware.cpp.o.d"
  "/root/repo/src/pcm/FailureBuffer.cpp" "src/pcm/CMakeFiles/wearmem_pcm.dir/FailureBuffer.cpp.o" "gcc" "src/pcm/CMakeFiles/wearmem_pcm.dir/FailureBuffer.cpp.o.d"
  "/root/repo/src/pcm/FailureMap.cpp" "src/pcm/CMakeFiles/wearmem_pcm.dir/FailureMap.cpp.o" "gcc" "src/pcm/CMakeFiles/wearmem_pcm.dir/FailureMap.cpp.o.d"
  "/root/repo/src/pcm/PcmDevice.cpp" "src/pcm/CMakeFiles/wearmem_pcm.dir/PcmDevice.cpp.o" "gcc" "src/pcm/CMakeFiles/wearmem_pcm.dir/PcmDevice.cpp.o.d"
  "/root/repo/src/pcm/WearSimulation.cpp" "src/pcm/CMakeFiles/wearmem_pcm.dir/WearSimulation.cpp.o" "gcc" "src/pcm/CMakeFiles/wearmem_pcm.dir/WearSimulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wearmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
