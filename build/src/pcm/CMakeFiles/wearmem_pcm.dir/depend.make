# Empty dependencies file for wearmem_pcm.
# This may be replaced when dependencies are built.
