file(REMOVE_RECURSE
  "libwearmem_gc.a"
)
