# Empty dependencies file for wearmem_gc.
# This may be replaced when dependencies are built.
