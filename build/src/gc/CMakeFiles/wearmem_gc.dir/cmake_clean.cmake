file(REMOVE_RECURSE
  "CMakeFiles/wearmem_gc.dir/Heap.cpp.o"
  "CMakeFiles/wearmem_gc.dir/Heap.cpp.o.d"
  "libwearmem_gc.a"
  "libwearmem_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
