file(REMOVE_RECURSE
  "CMakeFiles/wearmem_workload.dir/Mutator.cpp.o"
  "CMakeFiles/wearmem_workload.dir/Mutator.cpp.o.d"
  "CMakeFiles/wearmem_workload.dir/Profile.cpp.o"
  "CMakeFiles/wearmem_workload.dir/Profile.cpp.o.d"
  "CMakeFiles/wearmem_workload.dir/Runner.cpp.o"
  "CMakeFiles/wearmem_workload.dir/Runner.cpp.o.d"
  "libwearmem_workload.a"
  "libwearmem_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearmem_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
