file(REMOVE_RECURSE
  "libwearmem_workload.a"
)
