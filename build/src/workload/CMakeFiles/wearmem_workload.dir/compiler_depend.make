# Empty compiler generated dependencies file for wearmem_workload.
# This may be replaced when dependencies are built.
