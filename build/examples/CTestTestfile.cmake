# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lifetime_extension "/root/repo/build/examples/lifetime_extension")
set_tests_properties(example_lifetime_extension PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_failures "/root/repo/build/examples/online_failures")
set_tests_properties(example_online_failures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_binning_explorer "/root/repo/build/examples/binning_explorer")
set_tests_properties(example_binning_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
