# Empty compiler generated dependencies file for lifetime_extension.
# This may be replaced when dependencies are built.
