file(REMOVE_RECURSE
  "CMakeFiles/lifetime_extension.dir/lifetime_extension.cpp.o"
  "CMakeFiles/lifetime_extension.dir/lifetime_extension.cpp.o.d"
  "lifetime_extension"
  "lifetime_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
