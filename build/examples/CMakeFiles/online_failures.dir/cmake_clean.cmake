file(REMOVE_RECURSE
  "CMakeFiles/online_failures.dir/online_failures.cpp.o"
  "CMakeFiles/online_failures.dir/online_failures.cpp.o.d"
  "online_failures"
  "online_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
