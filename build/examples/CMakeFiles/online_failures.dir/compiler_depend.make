# Empty compiler generated dependencies file for online_failures.
# This may be replaced when dependencies are built.
