
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/binning_explorer.cpp" "examples/CMakeFiles/binning_explorer.dir/binning_explorer.cpp.o" "gcc" "examples/CMakeFiles/binning_explorer.dir/binning_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/wearmem_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wearmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/wearmem_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/wearmem_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/wearmem_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/wearmem_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wearmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
