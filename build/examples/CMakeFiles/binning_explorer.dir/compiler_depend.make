# Empty compiler generated dependencies file for binning_explorer.
# This may be replaced when dependencies are built.
