file(REMOVE_RECURSE
  "CMakeFiles/binning_explorer.dir/binning_explorer.cpp.o"
  "CMakeFiles/binning_explorer.dir/binning_explorer.cpp.o.d"
  "binning_explorer"
  "binning_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binning_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
