//===- tests/ObsTest.cpp - Observability subsystem tests ------------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/FlightRecorder.h"
#include "obs/Hooks.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace wearmem;

namespace {

/// The registry and recorder are process-wide singletons, so every test
/// starts from disabled domains and zeroed values to stay independent of
/// test order.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::disable(obs::AllDomains);
    obs::MetricsRegistry::instance().resetValues();
    obs::FlightRecorder::instance().reset();
  }
  void TearDown() override { obs::disable(obs::AllDomains); }
};

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

} // namespace

TEST_F(ObsTest, EnableDisableMaskRoundTrip) {
  EXPECT_FALSE(obs::tracingOn());
  EXPECT_FALSE(obs::metricsOn());
  uint32_t Prev = obs::enable(obs::TraceDomain);
  EXPECT_EQ(Prev & obs::TraceDomain, 0u);
  EXPECT_TRUE(obs::tracingOn());
  EXPECT_FALSE(obs::metricsOn());
  obs::enable(obs::MetricsDomain);
  EXPECT_EQ(obs::enabledMask(), obs::AllDomains);
  Prev = obs::disable(obs::TraceDomain);
  EXPECT_EQ(Prev, obs::AllDomains);
  EXPECT_FALSE(obs::tracingOn());
  EXPECT_TRUE(obs::metricsOn());
}

TEST_F(ObsTest, CounterRegistrationIsIdempotent) {
  auto &R = obs::MetricsRegistry::instance();
  obs::MetricId A =
      R.counter("test.idem", obs::MetricDomain::Deterministic);
  obs::MetricId B =
      R.counter("test.idem", obs::MetricDomain::Deterministic);
  EXPECT_EQ(A.Index, B.Index);
  EXPECT_EQ(A.Slot, B.Slot);
  R.add(A, 3);
  R.add(B, 4);
  EXPECT_EQ(R.counterValue(A), 7u);
}

TEST_F(ObsTest, GaugeHoldsLastValue) {
  auto &R = obs::MetricsRegistry::instance();
  obs::MetricId G = R.gauge("test.gauge", obs::MetricDomain::Deterministic);
  R.set(G, 41);
  R.set(G, 17);
  EXPECT_EQ(R.gaugeValue(G), 17u);
}

TEST_F(ObsTest, HistogramBucketsSamplesIncludingOverflow) {
  auto &R = obs::MetricsRegistry::instance();
  obs::MetricId H =
      R.histogram("test.hist", obs::MetricDomain::Deterministic,
                  {10, 100, 1000});
  R.observe(H, 0);    // <= 10
  R.observe(H, 10);   // <= 10 (bound is inclusive)
  R.observe(H, 11);   // <= 100
  R.observe(H, 999);  // <= 1000
  R.observe(H, 5000); // overflow bucket
  std::vector<uint64_t> Counts = R.histogramCounts(H);
  ASSERT_EQ(Counts.size(), 4u) << "3 bounds + implicit overflow bucket";
  EXPECT_EQ(Counts[0], 2u);
  EXPECT_EQ(Counts[1], 1u);
  EXPECT_EQ(Counts[2], 1u);
  EXPECT_EQ(Counts[3], 1u);
}

TEST_F(ObsTest, ShardsSumAcrossThreads) {
  auto &R = obs::MetricsRegistry::instance();
  obs::MetricId C =
      R.counter("test.sharded", obs::MetricDomain::Deterministic);
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 10000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&R, C] {
      for (uint64_t I = 0; I != PerThread; ++I)
        R.add(C);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(R.counterValue(C), NumThreads * PerThread);
}

TEST_F(ObsTest, TimingDomainOnlyExportsWhenAskedFor) {
  auto &R = obs::MetricsRegistry::instance();
  R.add(R.counter("test.det_only", obs::MetricDomain::Deterministic), 5);
  R.add(R.counter("test.timing_only", obs::MetricDomain::Timing), 9);
  std::string DetOnly = R.exportJsonString(/*IncludeTiming=*/false);
  EXPECT_NE(DetOnly.find("\"test.det_only\": 5"), std::string::npos);
  EXPECT_EQ(DetOnly.find("test.timing_only"), std::string::npos);
  EXPECT_EQ(DetOnly.find("\"timing\""), std::string::npos);
  std::string Both = R.exportJsonString(/*IncludeTiming=*/true);
  EXPECT_NE(Both.find("\"test.timing_only\": 9"), std::string::npos);
}

TEST_F(ObsTest, ExportSortsNamesIndependentOfRegistrationOrder) {
  auto &R = obs::MetricsRegistry::instance();
  R.add(R.counter("test.zz_last", obs::MetricDomain::Deterministic), 1);
  R.add(R.counter("test.aa_first", obs::MetricDomain::Deterministic), 1);
  std::string Json = R.exportJsonString(false);
  size_t First = Json.find("test.aa_first");
  size_t Last = Json.find("test.zz_last");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Last, std::string::npos);
  EXPECT_LT(First, Last);
}

TEST_F(ObsTest, ResetValuesZeroesButKeepsRegistrations) {
  auto &R = obs::MetricsRegistry::instance();
  obs::MetricId C = R.counter("test.reset", obs::MetricDomain::Deterministic);
  R.add(C, 12);
  EXPECT_EQ(R.counterValue(C), 12u);
  R.resetValues();
  EXPECT_EQ(R.counterValue(C), 0u);
  // The cached id survives the reset and keeps counting.
  R.add(C, 2);
  EXPECT_EQ(R.counterValue(C), 2u);
}

TEST_F(ObsTest, HookMacrosAreInertWhileDisabled) {
  WEARMEM_COUNT_DET("test.hook_gated");
  WEARMEM_TRACE(SnapshotTaken, 1, 2);
  // Nothing registered, nothing recorded: the export carries no such
  // metric and the recorder stays empty.
  std::string Json =
      obs::MetricsRegistry::instance().exportJsonString(true);
  EXPECT_EQ(Json.find("test.hook_gated"), std::string::npos);
  EXPECT_TRUE(obs::FlightRecorder::instance().collect().empty());
}

TEST_F(ObsTest, HookMacrosCountAndRecordWhenEnabled) {
  obs::enable(obs::AllDomains);
  for (int I = 0; I != 3; ++I)
    WEARMEM_COUNT_DET("test.hook_live");
  WEARMEM_TRACE(SnapshotTaken, 7, 0);
  std::string Json =
      obs::MetricsRegistry::instance().exportJsonString(false);
  EXPECT_NE(Json.find("\"test.hook_live\": 3"), std::string::npos);
  std::vector<obs::TraceEvent> Events =
      obs::FlightRecorder::instance().collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind,
            static_cast<uint16_t>(obs::EventKind::SnapshotTaken));
  EXPECT_EQ(Events[0].A, 7u);
}

TEST_F(ObsTest, RingKeepsMostRecentEventsAfterWrap) {
  obs::enable(obs::TraceDomain);
  const size_t Capacity = obs::FlightRecorder::DefaultCapacity;
  const size_t Total = Capacity + 500;
  for (size_t I = 0; I != Total; ++I)
    obs::FlightRecorder::record(obs::EventKind::BufferPush, I, 0);
  std::vector<obs::TraceEvent> Events =
      obs::FlightRecorder::instance().collect();
  ASSERT_EQ(Events.size(), Capacity);
  // The oldest 500 fell off the ring; what's left is the tail window.
  EXPECT_EQ(Events.front().A, 500u);
  EXPECT_EQ(Events.back().A, Total - 1);
}

TEST_F(ObsTest, CollectOrdersEventsByTimestamp) {
  obs::enable(obs::TraceDomain);
  for (uint64_t I = 0; I != 100; ++I)
    obs::FlightRecorder::record(obs::EventKind::Interrupt, I, 0);
  std::vector<obs::TraceEvent> Events =
      obs::FlightRecorder::instance().collect();
  ASSERT_EQ(Events.size(), 100u);
  for (size_t I = 1; I != Events.size(); ++I)
    EXPECT_GE(Events[I].TsNs, Events[I - 1].TsNs);
}

TEST_F(ObsTest, BinaryDumpRoundTrips) {
  obs::enable(obs::TraceDomain);
  obs::FlightRecorder::record(obs::EventKind::WearFailure, 10, 20);
  obs::FlightRecorder::record(obs::EventKind::PageRemap, 30, 40);
  obs::FlightRecorder::record(obs::EventKind::GcBegin, 1, 1);
  std::string Path = tempPath("obs_dump.bin");
  ASSERT_TRUE(obs::FlightRecorder::instance().dumpBinary(Path));
  std::vector<obs::TraceEvent> Back = obs::FlightRecorder::readBinary(Path);
  ASSERT_EQ(Back.size(), 3u);
  EXPECT_EQ(Back[0].Kind, static_cast<uint16_t>(obs::EventKind::WearFailure));
  EXPECT_EQ(Back[0].A, 10u);
  EXPECT_EQ(Back[0].B, 20u);
  EXPECT_EQ(Back[1].Kind, static_cast<uint16_t>(obs::EventKind::PageRemap));
  EXPECT_EQ(Back[2].Kind, static_cast<uint16_t>(obs::EventKind::GcBegin));
  std::remove(Path.c_str());
}

TEST_F(ObsTest, BinaryDumpHonorsMaxEvents) {
  obs::enable(obs::TraceDomain);
  for (uint64_t I = 0; I != 50; ++I)
    obs::FlightRecorder::record(obs::EventKind::BufferPush, I, 0);
  std::string Path = tempPath("obs_dump_bounded.bin");
  ASSERT_TRUE(obs::FlightRecorder::instance().dumpBinary(Path, 10));
  std::vector<obs::TraceEvent> Back = obs::FlightRecorder::readBinary(Path);
  ASSERT_EQ(Back.size(), 10u);
  // Bounded dumps keep the most recent window, not the oldest.
  EXPECT_EQ(Back.front().A, 40u);
  EXPECT_EQ(Back.back().A, 49u);
  std::remove(Path.c_str());
}

TEST_F(ObsTest, ReadBinaryRejectsMalformedFiles) {
  std::string Path = tempPath("obs_not_a_dump.bin");
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("this is not a WMFR dump", F);
  std::fclose(F);
  EXPECT_TRUE(obs::FlightRecorder::readBinary(Path).empty());
  std::remove(Path.c_str());
  EXPECT_TRUE(obs::FlightRecorder::readBinary("/nonexistent/x.bin").empty());
}

TEST_F(ObsTest, ChromeTraceExportContainsRecordedEvents) {
  obs::enable(obs::TraceDomain);
  obs::FlightRecorder::record(obs::EventKind::GcBegin, 1, 1);
  obs::FlightRecorder::record(obs::EventKind::Evacuation, 48, 0);
  obs::FlightRecorder::record(obs::EventKind::GcEnd, 1, 1);
  std::string Path = tempPath("obs_trace.json");
  ASSERT_TRUE(obs::FlightRecorder::instance().exportChromeTrace(Path));
  FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Text(1 << 16, '\0');
  Text.resize(std::fread(&Text[0], 1, Text.size(), F));
  std::fclose(F);
  EXPECT_NE(Text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Text.find("\"evacuation\""), std::string::npos);
  EXPECT_NE(Text.find("\"collection\""), std::string::npos);
  // GC begin/end pairs become duration events.
  EXPECT_NE(Text.find("\"B\""), std::string::npos);
  EXPECT_NE(Text.find("\"E\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST_F(ObsTest, ResetDropsEventsAndRestartsClock) {
  obs::enable(obs::TraceDomain);
  obs::FlightRecorder::record(obs::EventKind::Interrupt, 1, 0);
  obs::FlightRecorder::instance().reset();
  EXPECT_TRUE(obs::FlightRecorder::instance().collect().empty());
  obs::FlightRecorder::record(obs::EventKind::Interrupt, 2, 0);
  std::vector<obs::TraceEvent> Events =
      obs::FlightRecorder::instance().collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].A, 2u);
}

TEST_F(ObsTest, GcPauseAccountingStaysInTheTimingDomain) {
  // Regression: wall-clock pause totals (and every other *_us_total
  // duration) must surface only through Timing-domain metrics. The
  // deterministic export is compared byte-for-byte across reruns and
  // worker counts, so a pause counter leaking into it would break the
  // determinism gates on every machine with different timing.
  obs::enable(obs::MetricsDomain);
  RuntimeConfig Cfg;
  Cfg.Collector = CollectorKind::StickyImmix;
  Cfg.HeapBytes = 8 * MiB;
  Cfg.IncrementalMark = true;
  Runtime Rt(Cfg);
  Handle Head = Rt.allocateRooted(8, 1);
  ASSERT_NE(Head.get(), nullptr);
  for (int I = 0; I != 2000; ++I) {
    ObjRef Node = Rt.allocate(8, 1);
    ASSERT_NE(Node, nullptr);
    Rt.writeRef(Node, 0, Head.get());
    Head.set(Node);
  }
  Rt.collect(true);  // Full pause.
  Rt.collect(false); // Nursery pause.
  ASSERT_TRUE(Rt.beginIncrementalMarkCycle());
  while (Rt.incrementalMarkStep())
    ;
  Rt.finishIncrementalMarkCycle();
  EXPECT_GT(Rt.heap().fullGcPausesMs().size(), 0u);
  EXPECT_GT(Rt.heap().nurseryGcPausesMs().size(), 0u);

  auto &R = obs::MetricsRegistry::instance();
  std::string Det = R.exportJsonString(/*IncludeTiming=*/false);
  EXPECT_EQ(Det.find("pause"), std::string::npos)
      << "pause accounting leaked into the deterministic export";
  EXPECT_EQ(Det.find("_us_total"), std::string::npos)
      << "a wall-clock duration leaked into the deterministic export";
  // The deterministic side of incremental marking does export: cycle
  // counts are driver-controlled. The step count is NOT deterministic -
  // a budgeted parallel step can retire under quota, so the number of
  // steps a drain-to-convergence driver issues shifts with the worker
  // count - and must stay in the timing (schedule) domain.
  EXPECT_NE(Det.find("gc.inc.cycles_opened"), std::string::npos);
  EXPECT_NE(Det.find("gc.inc.cycles_closed"), std::string::npos);
  EXPECT_EQ(Det.find("gc.inc.mark_steps"), std::string::npos)
      << "schedule-dependent step count leaked into the deterministic "
         "export";

  std::string Timing = R.exportJsonString(/*IncludeTiming=*/true);
  for (const char *Name :
       {"gc.pause_us_total", "gc.pause_full_us_total",
        "gc.pause_nursery_us_total", "gc.mark_us_total",
        "gc.inc.open_us_total", "gc.inc.step_us_total",
        "gc.inc.close_us_total", "gc.inc.mark_steps"})
    EXPECT_NE(Timing.find(Name), std::string::npos) << Name;
}
