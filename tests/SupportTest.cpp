//===- tests/SupportTest.cpp - Support library unit tests -----------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Bitmap.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/Units.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace wearmem;

TEST(UnitsTest, AlignmentHelpers) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(4096));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_EQ(alignUp(1, 64), 64u);
  EXPECT_EQ(alignUp(64, 64), 64u);
  EXPECT_EQ(alignDown(127, 64), 64u);
  EXPECT_EQ(divCeil(1, 64), 1u);
  EXPECT_EQ(divCeil(65, 64), 2u);
  EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(RandomTest, Deterministic) {
  Rng A(42), B(42), C(43);
  bool Diverged = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    if (X != C.next())
      Diverged = true;
  }
  EXPECT_TRUE(Diverged);
}

TEST(RandomTest, BoundsRespected) {
  Rng Rand(7);
  for (int I = 0; I != 10000; ++I) {
    uint64_t V = Rand.nextBelow(17);
    EXPECT_LT(V, 17u);
    uint64_t R = Rand.nextInRange(5, 9);
    EXPECT_GE(R, 5u);
    EXPECT_LE(R, 9u);
    double D = Rand.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, UniformishDistribution) {
  Rng Rand(99);
  int Counts[10] = {};
  constexpr int N = 100000;
  for (int I = 0; I != N; ++I)
    ++Counts[Rand.nextBelow(10)];
  for (int C : Counts) {
    EXPECT_GT(C, N / 10 - N / 50);
    EXPECT_LT(C, N / 10 + N / 50);
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng Rand(1234);
  RunningStat Stat;
  for (int I = 0; I != 50000; ++I)
    Stat.add(Rand.nextGaussian());
  EXPECT_NEAR(Stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(Stat.stddev(), 1.0, 0.02);
}

TEST(BitmapTest, SetGetClear) {
  Bitmap Map(130);
  EXPECT_EQ(Map.size(), 130u);
  EXPECT_TRUE(Map.none());
  Map.set(0);
  Map.set(64);
  Map.set(129);
  EXPECT_TRUE(Map.get(0));
  EXPECT_TRUE(Map.get(64));
  EXPECT_TRUE(Map.get(129));
  EXPECT_FALSE(Map.get(1));
  EXPECT_EQ(Map.count(), 3u);
  Map.clear(64);
  EXPECT_FALSE(Map.get(64));
  EXPECT_EQ(Map.count(), 2u);
}

TEST(BitmapTest, FindNext) {
  Bitmap Map(200);
  Map.set(5);
  Map.set(70);
  Map.set(199);
  EXPECT_EQ(Map.findNextSet(0), 5u);
  EXPECT_EQ(Map.findNextSet(6), 70u);
  EXPECT_EQ(Map.findNextSet(71), 199u);
  EXPECT_EQ(Map.findNextSet(200), 200u);
  EXPECT_EQ(Map.findNextClear(5), 6u);
  Map.setAll();
  EXPECT_EQ(Map.findNextClear(0), 200u);
  EXPECT_EQ(Map.count(), 200u);
}

TEST(BitmapTest, ContainsAll) {
  Bitmap Super(64), Sub(64), Other(64);
  Super.set(1);
  Super.set(2);
  Super.set(3);
  Sub.set(2);
  Other.set(9);
  EXPECT_TRUE(Super.containsAll(Sub));
  EXPECT_FALSE(Super.containsAll(Other));
  EXPECT_TRUE(Super.containsAll(Super));
}

TEST(StatsTest, RunningStat) {
  RunningStat Stat;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    Stat.add(V);
  EXPECT_EQ(Stat.count(), 8u);
  EXPECT_DOUBLE_EQ(Stat.mean(), 5.0);
  EXPECT_NEAR(Stat.stddev(), 2.138, 0.001);
  EXPECT_GT(Stat.ci95(), 0.0);
}

TEST(StatsTest, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
}

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::num(std::nan(""), 2), "-");
  EXPECT_EQ(Table::bytes(32 * 1024), "32KiB");
  EXPECT_EQ(Table::bytes(4 * 1024 * 1024), "4MiB");
  EXPECT_EQ(Table::bytes(100), "100B");
}
