//===- tests/FailureAwareHeapTest.cpp - Failure-aware heap tests ----------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The paper's core invariants under failure injection: live objects never
// occupy failed lines (static or dynamic), compensation holds working
// memory constant, dynamic failures are recovered by evacuation, pinned
// objects fall back to OS page remapping.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <vector>

using namespace wearmem;

namespace {
uint64_t &payloadWord(ObjRef Obj) {
  return *reinterpret_cast<uint64_t *>(objectPayload(Obj));
}
} // namespace

//===----------------------------------------------------------------------===//
// Static failures: property sweep over rates, line sizes, clustering
//===----------------------------------------------------------------------===//

struct StaticFailureParam {
  double Rate;
  size_t LineSize;
  unsigned ClusterPages;
};

class StaticFailureTest
    : public ::testing::TestWithParam<StaticFailureParam> {};

TEST_P(StaticFailureTest, LiveObjectsNeverOnFailedLines) {
  StaticFailureParam P = GetParam();
  RuntimeConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.HeapBytes = 8 * MiB;
  Config.FailureRate = P.Rate;
  Config.LineSize = P.LineSize;
  Config.ClusteringRegionPages = P.ClusterPages;
  Runtime Rt(Config);

  Rng Rand(5);
  Handle Table = Rt.allocateRooted(0, 300);
  ASSERT_NE(Table.get(), nullptr);
  for (int Round = 0; Round != 6; ++Round) {
    for (int I = 0; I != 3000; ++I) {
      uint32_t Payload =
          Rand.nextBool(0.1) ? 500 + Rand.nextBelow(3000) : 24;
      ObjRef Obj =
          Rt.allocate(Payload, static_cast<uint16_t>(Rand.nextBelow(3)));
      ASSERT_NE(Obj, nullptr);
      payloadWord(Obj) = 0xC0FFEE00 + I;
      if (Rand.nextBool(0.1))
        Rt.writeRef(Table.get(), Rand.nextBelow(300), Obj);
    }
    Rt.collect(Round % 2 == 0);
    // verifyIntegrity asserts no live object overlaps a failed line.
    Rt.heap().verifyIntegrity();
  }
  if (P.Rate > 0.0) {
    // Failed lines really arrived with the blocks.
    EXPECT_GT(Rt.stats().LinesSkippedFailed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesLinesClustering, StaticFailureTest,
    ::testing::Values(StaticFailureParam{0.0, 256, 0},
                      StaticFailureParam{0.10, 256, 0},
                      StaticFailureParam{0.10, 64, 0},
                      StaticFailureParam{0.10, 128, 0},
                      StaticFailureParam{0.25, 256, 2},
                      StaticFailureParam{0.25, 64, 1},
                      StaticFailureParam{0.50, 256, 2},
                      StaticFailureParam{0.50, 64, 2}),
    [](const ::testing::TestParamInfo<StaticFailureParam> &Info) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "f%02d_L%zu_cl%u",
                    static_cast<int>(Info.param.Rate * 100),
                    Info.param.LineSize, Info.param.ClusterPages);
      return std::string(Buf);
    });

//===----------------------------------------------------------------------===//
// Compensation
//===----------------------------------------------------------------------===//

TEST(CompensationTest, BudgetScalesByFailureRate) {
  RuntimeConfig Config;
  Config.HeapBytes = 16 * MiB;
  Config.FailureRate = 0.25;
  Config.CompensateForFailures = true;
  HeapConfig Heap = Config.toHeapConfig();
  // h / (1 - f): 16 MiB / 0.75 = 21.33 MiB, rounded up to block granules.
  size_t Expect = static_cast<size_t>(16.0 * 1024 * 1024 / 0.75 / 4096);
  EXPECT_GE(Heap.BudgetPages, Expect);
  EXPECT_LE(Heap.BudgetPages, Expect + 8);

  Config.CompensateForFailures = false;
  EXPECT_EQ(Config.toHeapConfig().BudgetPages, 16u * MiB / PcmPageSize);
}

TEST(CompensationTest, WorkingMemoryHeldConstant) {
  // With exact-count injection and compensation, the number of working
  // (non-failed) lines equals the uncompensated heap's line count.
  RuntimeConfig Config;
  Config.HeapBytes = 8 * MiB;
  Config.FailureRate = 0.5;
  Runtime Rt(Config);
  const FailureMap &Map = Rt.heap().os().budgetFailureMap();
  size_t Working = Map.numLines() - Map.failedCount();
  size_t Target = 8 * MiB / PcmLineSize;
  EXPECT_NEAR(static_cast<double>(Working), static_cast<double>(Target),
              static_cast<double>(Target) * 0.01);
}

//===----------------------------------------------------------------------===//
// Dynamic failures
//===----------------------------------------------------------------------===//

TEST(DynamicFailureTest, DataSurvivesInjectedLineFailures) {
  RuntimeConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.HeapBytes = 8 * MiB;
  Config.FailureRate = 0.10;
  Config.ClusteringRegionPages = 2;
  Runtime Rt(Config);

  constexpr unsigned N = 5000;
  Handle Table = Rt.allocateRooted(0, N);
  ASSERT_NE(Table.get(), nullptr);
  for (unsigned I = 0; I != N; ++I) {
    ObjRef Obj = Rt.allocate(8, 0);
    ASSERT_NE(Obj, nullptr);
    payloadWord(Obj) = I * 7 + 1;
    Rt.writeRef(Table.get(), I, Obj);
  }
  Rt.collect(true);

  Rng Rand(99);
  for (int Failure = 0; Failure != 10; ++Failure)
    ASSERT_TRUE(Rt.injectRandomDynamicFailure(Rand));
  EXPECT_EQ(Rt.stats().DynamicFailuresHandled, 10u);
  EXPECT_GE(Rt.stats().FullGcCount, 10u);

  for (unsigned I = 0; I != N; ++I) {
    ObjRef Obj = Runtime::readRef(Table.get(), I);
    ASSERT_NE(Obj, nullptr);
    ASSERT_EQ(payloadWord(Obj), I * 7 + 1) << "object " << I;
  }
  Rt.heap().verifyIntegrity();
}

TEST(DynamicFailureTest, TargetedLineIsRetiredForever) {
  RuntimeConfig Config;
  Config.HeapBytes = 4 * MiB;
  Runtime Rt(Config);
  Handle Obj = Rt.allocateRooted(64, 0);
  ASSERT_NE(Obj.get(), nullptr);
  payloadWord(Obj.get()) = 1234;
  uint8_t *Addr = Obj.get();
  Block *B = Rt.heap().immixSpace()->blockOf(Addr);
  ASSERT_NE(B, nullptr);
  unsigned Line = B->lineOf(Addr);

  Rt.injectDynamicFailureAt(Addr);
  // The object moved away; the line is failed for good.
  EXPECT_TRUE(B->lineIsFailed(Line));
  EXPECT_NE(Obj.get(), Addr);
  EXPECT_EQ(payloadWord(Obj.get()), 1234u);
}

TEST(DynamicFailureTest, PinnedObjectTriggersPageRemap) {
  RuntimeConfig Config;
  Config.HeapBytes = 4 * MiB;
  Runtime Rt(Config);
  Handle Pinned = Rt.allocateRooted(64, 0, /*Pinned=*/true);
  ASSERT_NE(Pinned.get(), nullptr);
  payloadWord(Pinned.get()) = 4321;
  uint8_t *Addr = Pinned.get();

  Rt.injectDynamicFailureAt(Addr);
  // The pinned object could not move: the OS remapped the page, the
  // line is usable again, and the object stayed put.
  EXPECT_EQ(Rt.stats().PinnedFailurePageRemaps, 1u);
  EXPECT_EQ(Pinned.get(), Addr);
  EXPECT_EQ(payloadWord(Pinned.get()), 4321u);
  Block *B = Rt.heap().immixSpace()->blockOf(Addr);
  EXPECT_FALSE(B->lineIsFailed(B->lineOf(Addr)));
}

TEST(DynamicFailureTest, LargeObjectRelocation) {
  RuntimeConfig Config;
  Config.HeapBytes = 8 * MiB;
  Runtime Rt(Config);
  Handle Big = Rt.allocateRooted(64 * KiB, 0);
  ASSERT_NE(Big.get(), nullptr);
  uint8_t *Payload = objectPayload(Big.get());
  for (size_t I = 0; I != 64 * KiB; ++I)
    Payload[I] = static_cast<uint8_t>(I * 13);
  uint8_t *Before = Big.get();

  Rt.heap().injectDynamicFailureOnLarge(Big.get());
  EXPECT_NE(Big.get(), Before);
  Payload = objectPayload(Big.get());
  for (size_t I = 0; I < 64 * KiB; I += 37)
    ASSERT_EQ(Payload[I], static_cast<uint8_t>(I * 13));
  Rt.heap().verifyIntegrity();
}

TEST(DynamicFailureTest, FreeListHeapFallsBackToPageCopy) {
  // Section 3.3.1: a non-moving free-list runtime cannot handle dynamic
  // failures; the OS must copy the page.
  RuntimeConfig Config;
  Config.Collector = CollectorKind::MarkSweep;
  Config.HeapBytes = 4 * MiB;
  Runtime Rt(Config);
  Handle Obj = Rt.allocateRooted(64, 0);
  ASSERT_NE(Obj.get(), nullptr);
  Rt.injectDynamicFailureAt(Obj.get());
  EXPECT_EQ(Rt.stats().DynamicFailurePageCopies, 1u);
}

//===----------------------------------------------------------------------===//
// Failure-aware free list (static failures)
//===----------------------------------------------------------------------===//

TEST(FreeListFailureTest, CellsOverlappingFailuresAreWithheld) {
  // A modest 3% line-failure rate: small cells mostly survive, but a
  // measurable population is withheld (each failed 64 B line poisons a
  // whole cell - the paper's granularity-mismatch cost).
  RuntimeConfig Config;
  Config.Collector = CollectorKind::MarkSweep;
  Config.HeapBytes = 4 * MiB;
  Config.FailureRate = 0.03;
  Config.FreeListFailureAware = true;
  Runtime Rt(Config);

  Handle Table = Rt.allocateRooted(0, 200);
  ASSERT_NE(Table.get(), nullptr);
  Rng Rand(11);
  for (int I = 0; I != 20000; ++I) {
    ObjRef Obj = Rt.allocate(static_cast<uint32_t>(Rand.nextBelow(200)),
                             1);
    ASSERT_NE(Obj, nullptr);
    if (Rand.nextBool(0.01))
      Rt.writeRef(Table.get(), Rand.nextBelow(200), Obj);
  }
  Rt.collect(true);
  Rt.heap().verifyIntegrity();
  EXPECT_FALSE(Rt.outOfMemory());
}

TEST(FreeListFailureTest, LargeCellsSufferDisproportionately) {
  // The same line-failure rate wastes far more memory in big size
  // classes: P(2 KiB cell clean) = (1-f)^32 vs (1-f)^1 for 64 B cells.
  RuntimeConfig Config;
  Config.Collector = CollectorKind::MarkSweep;
  Config.HeapBytes = 4 * MiB;
  Config.FailureRate = 0.10;
  Config.FreeListFailureAware = true;
  Runtime Rt(Config);
  // Allocate 2 KiB objects only; at 10% failures almost every cell
  // (P(clean) = 0.9^32 ~ 3%) is withheld, so the runtime burns through
  // far more blocks than a failure-free heap would.
  for (int I = 0; I != 200; ++I)
    if (!Rt.allocate(2000, 0))
      break;
  uint64_t FailingSlowPaths = Rt.heap().stats().AllocSlowPaths;

  RuntimeConfig Clean = Config;
  Clean.FailureRate = 0.0;
  Runtime CleanRt(Clean);
  for (int I = 0; I != 200; ++I)
    ASSERT_NE(CleanRt.allocate(2000, 0), nullptr);
  uint64_t CleanSlowPaths = CleanRt.heap().stats().AllocSlowPaths;

  EXPECT_GT(FailingSlowPaths, 5 * CleanSlowPaths);
}

//===----------------------------------------------------------------------===//
// Zero-overhead claim scaffolding
//===----------------------------------------------------------------------===//

TEST(FailureAwareTest, NoMetadataGrowthWithoutFailures) {
  // The failure-aware collector adds no metadata when there are no
  // failures: the budget and block bookkeeping are identical.
  RuntimeConfig Aware;
  Aware.HeapBytes = 8 * MiB;
  Aware.FailureAware = true;
  RuntimeConfig Plain = Aware;
  Plain.FailureAware = false;
  EXPECT_EQ(Aware.toHeapConfig().BudgetPages,
            Plain.toHeapConfig().BudgetPages);
}
