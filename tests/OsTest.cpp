//===- tests/OsTest.cpp - OS provisioning, kernel, and swap tests ---------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "os/Os.h"
#include "os/OsKernel.h"
#include "os/SwapManager.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace wearmem;

namespace {
FailureConfig uniformFailures(double Rate, uint64_t Seed = 7) {
  FailureConfig Config;
  Config.Rate = Rate;
  Config.Seed = Seed;
  return Config;
}
} // namespace

TEST(OsTest, RelaxedGrantsCarryFailureWords) {
  FailureAwareOs Os(64, uniformFailures(0.25));
  auto Grant = Os.allocRelaxed(8);
  ASSERT_TRUE(Grant.has_value());
  EXPECT_EQ(Grant->NumPages, 8u);
  ASSERT_EQ(Grant->FailWords.size(), 8u);
  // At 25% line failures, a page's word is essentially never zero.
  size_t Imperfect = 0;
  for (uint64_t Word : Grant->FailWords)
    Imperfect += Word != 0;
  EXPECT_GT(Imperfect, 5u);
  // Grants are block-aligned and zeroed.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Grant->Mem) % (32 * KiB), 0u);
  for (size_t I = 0; I < Grant->sizeBytes(); I += 997)
    EXPECT_EQ(Grant->Mem[I], 0u);
}

TEST(OsTest, BudgetExhaustion) {
  FailureAwareOs Os(16, uniformFailures(0.0));
  EXPECT_TRUE(Os.allocRelaxed(8).has_value());
  EXPECT_TRUE(Os.allocRelaxed(8).has_value());
  EXPECT_FALSE(Os.allocRelaxed(1).has_value());
  EXPECT_EQ(Os.remainingPages(), 0u);
}

TEST(OsTest, PerfectServedFromPcmThenDram) {
  // At a 50% failure rate over 32 pages, perfect pages are rare; fussy
  // requests beyond the stock borrow DRAM and accrue debt.
  FailureAwareOs Os(32, uniformFailures(0.5));
  size_t Stock = Os.remainingPerfectPages();
  auto Grant = Os.allocPerfect(Stock + 3);
  ASSERT_TRUE(Grant.has_value());
  EXPECT_EQ(Os.outstandingDebt(), 3u);
  EXPECT_EQ(Os.stats().DramBorrowed, 3u);
  EXPECT_EQ(Os.stats().PerfectPcmServed, Stock);
}

TEST(OsTest, RelaxedDivertsPerfectPagesToRepayDebt) {
  FailureAwareOs Os(64, uniformFailures(0.0));
  // Exhaust the perfect stock via fussy requests is impossible at f=0
  // (every page is perfect), so create debt artificially by draining the
  // stream first.
  while (Os.allocRelaxed(8))
    ;
  auto Borrowed = Os.allocPerfect(4);
  ASSERT_TRUE(Borrowed.has_value());
  EXPECT_EQ(Os.outstandingDebt(), 4u);
  // Returning a perfect grant and asking for relaxed pages repays debt
  // from the stock before granting anything.
  Os.freePerfect(std::move(*Borrowed));
  EXPECT_FALSE(Os.allocRelaxed(8).has_value());
  EXPECT_EQ(Os.outstandingDebt(), 0u);
  EXPECT_EQ(Os.stats().DebtRepaid, 4u);
}

TEST(OsTest, FreePerfectRecycles) {
  FailureAwareOs Os(16, uniformFailures(0.0));
  auto Grant = Os.allocPerfect(4);
  ASSERT_TRUE(Grant.has_value());
  uint8_t *Mem = Grant->Mem;
  Os.freePerfect(std::move(*Grant));
  auto Again = Os.allocPerfect(4);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Mem, Mem);
  EXPECT_EQ(Os.stats().PerfectRecycledServed, 4u);
}

TEST(OsTest, RecycledChunksSplitForSmallerRequests) {
  FailureAwareOs Os(16, uniformFailures(0.0));
  auto Big = Os.allocPerfect(8);
  ASSERT_TRUE(Big.has_value());
  uint8_t *Mem = Big->Mem;
  Os.freePerfect(std::move(*Big));
  auto Small = Os.allocPerfect(2);
  ASSERT_TRUE(Small.has_value());
  EXPECT_EQ(Small->Mem, Mem); // Front-split keeps alignment.
  auto Rest = Os.allocPerfect(6);
  ASSERT_TRUE(Rest.has_value());
  EXPECT_EQ(Rest->Mem, Mem + 2 * PcmPageSize);
}

TEST(OsTest, FreeRelaxedRoutesPerfectGrantsToStock) {
  FailureAwareOs Os(16, uniformFailures(0.0));
  auto Grant = Os.allocRelaxed(8);
  ASSERT_TRUE(Grant.has_value());
  Os.freeRelaxed(std::move(*Grant));
  EXPECT_EQ(Os.stats().PerfectPagesReturned, 8u);
  // And the stock serves fussy requests.
  EXPECT_TRUE(Os.allocPerfect(8).has_value());
  EXPECT_EQ(Os.stats().PerfectRecycledServed, 8u);
}

TEST(OsTest, FreeRelaxedImperfectGrantsRecycleWithWords) {
  FailureAwareOs Os(16, uniformFailures(0.3));
  auto Grant = Os.allocRelaxed(8);
  ASSERT_TRUE(Grant.has_value());
  std::vector<uint64_t> Words = Grant->FailWords;
  uint8_t *Mem = Grant->Mem;
  // Exhaust the stream, then return the grant.
  while (Os.allocRelaxed(8))
    ;
  Os.freeRelaxed(std::move(*Grant));
  // The returned grant is re-granted, failure words intact.
  auto Again = Os.allocRelaxed(8);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Mem, Mem);
  EXPECT_EQ(Again->FailWords, Words);
}

//===----------------------------------------------------------------------===//
// OsKernel: dynamic-failure interrupt handling
//===----------------------------------------------------------------------===//

TEST(OsKernelTest, UpCallsRegisteredHandler) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.MeanLineLifetime = 100;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);

  std::vector<FailureRecord> Seen;
  Kernel.registerHandler([&Seen](const std::vector<FailureRecord> &Pending) {
    for (const FailureRecord &Record : Pending)
      Seen.push_back(Record);
  });

  Device.injectImminentFailure(5);
  uint8_t Data[PcmLineSize];
  std::memset(Data, 0xEE, sizeof(Data));
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Ok);

  // The interrupt fired synchronously; the handler saw the failure, and
  // the kernel cleared the buffer afterwards.
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0].LineAddr, addrOfLine(5));
  EXPECT_EQ(Seen[0].Data[0], 0xEE);
  EXPECT_TRUE(Device.pendingFailures().empty());
  EXPECT_EQ(Kernel.stats().UpCalls, 1u);
  EXPECT_EQ(Kernel.stats().FailuresResolved, 1u);
  EXPECT_FALSE(Kernel.pageIsProtected(0));
}

TEST(OsKernelTest, FailureUnawareProcessGetsPageCopy) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);
  // No handler registered: the kernel copies the affected page.
  Device.injectImminentFailure(70); // Page 1.
  uint8_t Data[PcmLineSize] = {};
  EXPECT_EQ(Device.writeLine(70, Data), WriteResult::Ok);
  EXPECT_EQ(Kernel.stats().PageCopies, 1u);
  EXPECT_EQ(Kernel.stats().UpCalls, 0u);
}

TEST(OsKernelTest, HandlerSeesProtectedPage) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);
  bool WasProtected = false;
  Kernel.registerHandler(
      [&](const std::vector<FailureRecord> &Pending) {
        WasProtected =
            Kernel.pageIsProtected(pageOfAddr(Pending[0].LineAddr));
      });
  Device.injectImminentFailure(3);
  uint8_t Data[PcmLineSize] = {};
  Device.writeLine(3, Data);
  EXPECT_TRUE(WasProtected);
  EXPECT_FALSE(Kernel.pageIsProtected(0));
}

TEST(OsKernelTest, ReentrantFailureStaysBufferedUntilTheHandlerLoops) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);

  uint8_t Data[PcmLineSize];
  std::memset(Data, 0x5A, sizeof(Data));
  int Calls = 0;
  Kernel.registerHandler([&](const std::vector<FailureRecord> &Pending) {
    if (++Calls != 1)
      return;
    ASSERT_EQ(Pending.size(), 1u);
    EXPECT_EQ(Pending[0].LineAddr, addrOfLine(5));
    // The up-call's own write wears out another line. The interrupt
    // re-raises inside the handler; the failure must stay buffered (not
    // recurse) and be picked up when the outer handler loops.
    Device.injectImminentFailure(9);
    EXPECT_EQ(Device.writeLine(9, Data), WriteResult::Ok);
    EXPECT_EQ(Kernel.stats().ReentrantInterrupts, 1u);
    EXPECT_EQ(Device.pendingFailures().size(), 2u);
  });

  Device.injectImminentFailure(5);
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Ok);

  // One outer interrupt, two up-calls (the loop drained the re-entrant
  // failure), each failure resolved exactly once.
  EXPECT_EQ(Calls, 2);
  EXPECT_EQ(Kernel.stats().Interrupts, 1u);
  EXPECT_EQ(Kernel.stats().ReentrantInterrupts, 1u);
  EXPECT_EQ(Kernel.stats().UpCalls, 2u);
  EXPECT_EQ(Kernel.stats().FailuresResolved, 2u);
  EXPECT_TRUE(Device.pendingFailures().empty());
  EXPECT_TRUE(Device.softwareFailureMap().isFailed(5));
  EXPECT_TRUE(Device.softwareFailureMap().isFailed(9));
}

TEST(OsKernelTest, WriteWithBackpressureDrainsAStalledBuffer) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.FailureBufferCapacity = 4; // Near-full at 2 with reserve 2.
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);

  // Latch two failures before any kernel exists, so the buffer sits at
  // the stall threshold with nobody having drained it.
  uint8_t Data[PcmLineSize] = {};
  for (LineIndex Line : {0u, 1u}) {
    Device.injectImminentFailure(Line);
    EXPECT_EQ(Device.writeLine(Line, Data), WriteResult::Ok);
  }
  EXPECT_TRUE(Device.failureBuffer().nearFull());

  OsKernel Kernel(Device);
  Kernel.registerHandler([](const std::vector<FailureRecord> &) {});
  // The plain device write would return Stalled; backpressure drains and
  // retries until it lands.
  EXPECT_EQ(Kernel.writeWithBackpressure(addrOfLine(3), Data, PcmLineSize),
            WriteResult::Ok);
  EXPECT_GE(Kernel.stats().StallRetries, 1u);
  EXPECT_EQ(Kernel.stats().StallDrainFailures, 0u);
  EXPECT_TRUE(Device.pendingFailures().empty());
}

TEST(OsKernelTest, BackpressureGivesUpWhenTheDrainPathIsBusy) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.FailureBufferCapacity = 4;
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);
  uint8_t Data[PcmLineSize] = {};
  for (LineIndex Line : {0u, 1u}) {
    Device.injectImminentFailure(Line);
    EXPECT_EQ(Device.writeLine(Line, Data), WriteResult::Ok);
  }

  OsKernel Kernel(Device);
  int Calls = 0;
  WriteResult Inner = WriteResult::Ok;
  Kernel.registerHandler([&](const std::vector<FailureRecord> &) {
    if (Calls++ != 0)
      return;
    // A write issued from inside the failure handler finds the buffer
    // still near-full, and the drain path cannot re-enter: the bounded
    // retry budget must expire cleanly instead of spinning or crashing.
    Inner = Kernel.writeWithBackpressure(addrOfLine(3), Data, PcmLineSize);
  });
  Kernel.handleFailures();

  EXPECT_EQ(Inner, WriteResult::Stalled);
  EXPECT_EQ(Kernel.stats().StallRetries, OsKernel::MaxStallRetries);
  EXPECT_EQ(Kernel.stats().StallDrainFailures, 1u);
  // Once the handler returned, the outer loop drained everything.
  EXPECT_TRUE(Device.pendingFailures().empty());
  EXPECT_EQ(Calls, 1);
}

//===----------------------------------------------------------------------===//
// SwapManager: failure-compatible placement
//===----------------------------------------------------------------------===//

TEST(SwapManagerTest, PerfectOnlyPolicy) {
  SwapManager Swap(SwapPolicy::PerfectOnly);
  std::vector<uint64_t> Pool = {0b1010, 0, 0b1};
  auto Placement = Swap.place(0b1110, Pool);
  ASSERT_TRUE(Placement.has_value());
  EXPECT_EQ(Placement->PoolIndex, 1u);
  EXPECT_TRUE(Placement->UsedPerfectPage);
}

TEST(SwapManagerTest, SubsetMatchPrefersFullestCompatible) {
  SwapManager Swap(SwapPolicy::SubsetMatch);
  // Source fails lines {1,2,3}; compatible destinations fail subsets.
  std::vector<uint64_t> Pool = {0b0010, 0b0110, 0b1000, 0};
  auto Placement = Swap.place(0b1110, Pool);
  ASSERT_TRUE(Placement.has_value());
  EXPECT_EQ(Placement->PoolIndex, 1u); // {1,2}: densest subset.
  EXPECT_FALSE(Placement->UsedPerfectPage);
  EXPECT_EQ(Swap.stats().SubsetMatches, 1u);
}

TEST(SwapManagerTest, SubsetMatchFallsBackToPerfect) {
  SwapManager Swap(SwapPolicy::SubsetMatch);
  std::vector<uint64_t> Pool = {0b1000, 0};
  auto Placement = Swap.place(0b0110, Pool);
  ASSERT_TRUE(Placement.has_value());
  EXPECT_TRUE(Placement->UsedPerfectPage);
  EXPECT_EQ(Swap.stats().PerfectFallbacks, 1u);
}

TEST(SwapManagerTest, ClusteredCountMatching) {
  SwapManager Swap(SwapPolicy::ClusteredCount);
  // Clustered maps: counts are all that matter. Source has 3 failures;
  // any destination with <= 3 works, fullest preferred.
  std::vector<uint64_t> Pool = {0b1, 0b11, 0b11110, 0};
  auto Placement = Swap.place(0b111, Pool);
  ASSERT_TRUE(Placement.has_value());
  EXPECT_EQ(Placement->PoolIndex, 1u); // Two failures: densest <= 3.
  EXPECT_EQ(Swap.stats().ClusteredMatches, 1u);
}

TEST(SwapManagerTest, NoDestinationAvailable) {
  SwapManager Swap(SwapPolicy::PerfectOnly);
  std::vector<uint64_t> Pool = {0b1, 0b10};
  EXPECT_FALSE(Swap.place(0b1, Pool).has_value());
  EXPECT_EQ(Swap.stats().Failures, 1u);
}
