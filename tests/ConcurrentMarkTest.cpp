//===- tests/ConcurrentMarkTest.cpp - Concurrent SATB marking tests -------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The mostly-concurrent marking contract: a cycle drained by the
// dedicated marker thread, racing a reference-store mutation storm and
// paced only by flush handshakes, ends in a heap bit-identical to both
// the interleaved incremental mode and a stop-the-world full collection
// at the same point in the mutation history - across GC worker counts,
// across marker slice quotas, across mutator thread counts, and with
// dynamic failures landing while the marker is running.
//
// The timing side (pause bound, mutator-attributed mark time) is the
// perf05 gate's job; this file pins semantics only, so it stays
// meaningful under TSan.
//
//===----------------------------------------------------------------------===//

#include "gc/Heap.h"
#include "gc/HeapAuditor.h"
#include "workload/MutatorPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

using namespace wearmem;

namespace {

/// The three pacings of the same cycle machinery under test. Stw never
/// opens a cycle; Interleaved pumps incrementalMarkStep() from the
/// mutator; Concurrent arms the marker thread and only ever issues
/// flush handshakes from the mutator.
enum class Mode { Stw, Interleaved, Concurrent };

HeapConfig markConfig(Mode M, unsigned GcThreads,
                      unsigned MarkBudget = 256) {
  HeapConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.BudgetPages = (32 * MiB) / PcmPageSize;
  Config.GcThreads = GcThreads;
  Config.Failures.Rate = 0.02;
  Config.Failures.Seed = 7;
  Config.DefragFreeFraction = 0.35;
  Config.IncrementalMark = M == Mode::Interleaved;
  Config.ConcurrentMark = M == Mode::Concurrent;
  Config.MarkBudget = MarkBudget;
  return Config;
}

/// Builds NumLists rooted linked lists (slot 0 = next, slot 1 = a
/// cross-link slot) and returns the head root indices. Every fourth
/// node carries a "satellite" object reachable only through that one
/// cross link; the storm shuffles those around. Payloads are stamped so
/// payload-hashing digests mean something.
std::vector<unsigned> buildLists(Heap &Hp, unsigned NumLists,
                                 unsigned ListLen) {
  std::vector<unsigned> Heads;
  for (unsigned L = 0; L != NumLists; ++L) {
    unsigned HeadRoot = Hp.createRoot(nullptr);
    for (unsigned I = 0; I != ListLen; ++I) {
      ObjRef Node = Hp.allocate(/*PayloadBytes=*/48, /*NumRefs=*/2);
      if (!Node)
        break;
      *reinterpret_cast<uint64_t *>(objectPayload(Node)) =
          (uint64_t(L) << 32) | I;
      if (I % 4 == 0) {
        ObjRef Sat = Hp.allocate(/*PayloadBytes=*/32, /*NumRefs=*/0);
        if (Sat) {
          *reinterpret_cast<uint64_t *>(objectPayload(Sat)) =
              0x5A7ull << 32 | (uint64_t(L) << 16) | I;
          Hp.writeRef(Node, 1, Sat);
        }
      }
      if (ObjRef Head = Hp.root(HeadRoot))
        Hp.writeRef(Node, 0, Head);
      Hp.setRoot(HeadRoot, Node);
    }
    Heads.push_back(HeadRoot);
  }
  return Heads;
}

ObjRef walk(ObjRef Node, unsigned Steps) {
  for (unsigned I = 0; I != Steps && Node; ++I) {
    ObjRef Next = Heap::readRef(Node, 0);
    if (!Next)
      break;
    Node = Next;
  }
  return Node;
}

/// One deterministic reference-store mutation: swap two nodes' slot-1
/// cross links (or rewrite a head root with its own value). Swaps
/// permute the satellites without dropping one, so the live set evolves
/// identically whatever pacing drains the mark work - but between the
/// two writes a satellite's only strong reference is gone, which is
/// exactly the window the racing marker thread must be protected from
/// by the deletion log.
void mutationOp(Heap &Hp, const std::vector<unsigned> &Heads, uint64_t I) {
  uint64_t H = (I + 1) * 0x9E3779B97F4A7C15ull;
  unsigned L1 = static_cast<unsigned>((H >> 8) % Heads.size());
  unsigned L2 = static_cast<unsigned>((H >> 24) % Heads.size());
  if ((H & 7) == 0) {
    Hp.setRoot(Heads[L1], Hp.root(Heads[L1]));
    return;
  }
  ObjRef A = walk(Hp.root(Heads[L1]), static_cast<unsigned>((H >> 40) % 37));
  ObjRef B = walk(Hp.root(Heads[L2]), static_cast<unsigned>((H >> 48) % 37));
  if (!A || !B || A == B)
    return;
  ObjRef Ta = Heap::readRef(A, 1);
  ObjRef Tb = Heap::readRef(B, 1);
  Hp.writeRef(A, 1, Tb);
  Hp.writeRef(B, 1, Ta);
}

struct LegResult {
  uint64_t Digest = 0;
  uint64_t GcCount = 0;
  uint64_t FullGcCount = 0;
  uint64_t ObjectsAllocated = 0;
  uint64_t BytesAllocated = 0;
  uint64_t FailedLinesDynamic = 0;
  uint64_t PinnedFailurePageRemaps = 0;
  uint64_t ObjectsMarked = 0;
  uint64_t BytesTraced = 0;
  uint64_t ObjectsEvacuated = 0;
  uint64_t MarkIncrements = 0;
  uint64_t SatbLogged = 0;
  uint64_t SatbDrained = 0;
};

constexpr unsigned StormBatches = 40;
constexpr unsigned OpsPerBatch = 50;

/// Runs one leg: build, then a write storm. The marking legs open a
/// cycle first; the interleaved leg steps once per batch while the
/// concurrent leg issues one flush handshake per batch (the marker
/// thread drains in the background on its own schedule). All legs
/// close with the cycle's full collection at the same point in the
/// mutation history, then a settling full collection, then digest.
///
/// Determinism scoping: the marker's *schedule* is free-running, but
/// every deterministic observable - the heap digest, the allocation
/// and collection counters, the trace totals merged in worker order at
/// the close, and the SATB ledger (logged at the barrier, drained
/// exactly once) - is a pure function of the mutation history and the
/// open/close points, which this harness pins to identical batch
/// boundaries across all three modes.
LegResult runLeg(Mode M, unsigned GcThreads, unsigned MarkBudget,
                 bool MidCycleFailure) {
  Heap Hp(markConfig(M, GcThreads, MarkBudget));
  std::vector<unsigned> Heads = buildLists(Hp, 4, 2500);
  // A pinned fail target: never moves, keeps its block held, so the
  // fence lands on the same address in every leg.
  ObjRef Pinned = Hp.allocate(64, 0, /*Pinned=*/true);
  EXPECT_NE(Pinned, nullptr);
  Hp.createRoot(Pinned);
  EXPECT_FALSE(Hp.outOfMemory());

  if (M != Mode::Stw) {
    EXPECT_TRUE(Hp.beginIncrementalMarkCycle());
  }
  for (unsigned Batch = 0; Batch != StormBatches; ++Batch) {
    for (unsigned I = 0; I != OpsPerBatch; ++I)
      mutationOp(Hp, Heads, uint64_t(Batch) * OpsPerBatch + I);
    if (MidCycleFailure && Batch == StormBatches / 2 && M != Mode::Stw) {
      // Mid-cycle failure with the marker live: must park (the whole
      // cycle is a mark phase), not fence lines under the tracer.
      uint64_t DeferredBefore = Hp.stats().MarkPhaseDeferredInterrupts;
      Hp.injectDynamicFailureBatch({Pinned});
      EXPECT_EQ(Hp.stats().MarkPhaseDeferredInterrupts,
                DeferredBefore + 1);
      EXPECT_EQ(Hp.stats().FailedLinesDynamic, 0u)
          << "failure applied while the cycle was open";
    }
    if (M == Mode::Interleaved)
      Hp.incrementalMarkStep();
    else if (M == Mode::Concurrent)
      Hp.satbFlushHandshake();
  }
  if (M != Mode::Stw) {
    Hp.finishIncrementalMarkCycle(); // Quiesces the marker, drains all.
    EXPECT_FALSE(Hp.incrementalCycleOpen());
  } else {
    Hp.collect(CollectionKind::Full);
    if (MidCycleFailure)
      // The marking legs fence at the post-close drain; match that
      // point in virtual time.
      Hp.injectDynamicFailureBatch({Pinned});
  }
  Hp.collect(CollectionKind::Full); // Settle.

  HeapAuditor Auditor(Hp);
  LegResult R;
  R.Digest = Auditor.digest(/*HashPayload=*/true);
  EXPECT_TRUE(Auditor.audit().passed());
  const HeapStats &S = Hp.stats();
  R.GcCount = S.GcCount;
  R.FullGcCount = S.FullGcCount;
  R.ObjectsAllocated = S.ObjectsAllocated;
  R.BytesAllocated = S.BytesAllocated;
  R.FailedLinesDynamic = S.FailedLinesDynamic;
  R.PinnedFailurePageRemaps = S.PinnedFailurePageRemaps;
  R.ObjectsMarked = S.ObjectsMarked;
  R.BytesTraced = S.BytesTraced;
  R.ObjectsEvacuated = S.ObjectsEvacuated;
  R.MarkIncrements = S.MarkIncrements;
  R.SatbLogged = S.SatbLogged;
  R.SatbDrained = S.SatbDrained;
  return R;
}

/// Observables every mode must agree on, including stop-the-world.
void expectCrossModeEqual(const LegResult &A, const LegResult &B,
                          const char *What) {
  EXPECT_EQ(A.Digest, B.Digest) << What;
  EXPECT_EQ(A.GcCount, B.GcCount) << What;
  EXPECT_EQ(A.FullGcCount, B.FullGcCount) << What;
  EXPECT_EQ(A.ObjectsAllocated, B.ObjectsAllocated) << What;
  EXPECT_EQ(A.BytesAllocated, B.BytesAllocated) << What;
  EXPECT_EQ(A.FailedLinesDynamic, B.FailedLinesDynamic) << What;
  EXPECT_EQ(A.PinnedFailurePageRemaps, B.PinnedFailurePageRemaps) << What;
  EXPECT_EQ(A.ObjectsMarked, B.ObjectsMarked) << What;
  EXPECT_EQ(A.BytesTraced, B.BytesTraced) << What;
  EXPECT_EQ(A.ObjectsEvacuated, B.ObjectsEvacuated) << What;
}

/// The marking modes additionally share the SATB ledger: the barrier
/// logs unconditionally while a cycle is open, so with identical
/// open/close points the log is the same whether steps or the marker
/// thread drain it. MarkIncrements is deliberately excluded - it
/// counts mutator-side steps, which the concurrent mode has none of.
void expectMarkingLegsEqual(const LegResult &A, const LegResult &B,
                            const char *What) {
  expectCrossModeEqual(A, B, What);
  EXPECT_EQ(A.SatbLogged, B.SatbLogged) << What;
  EXPECT_EQ(A.SatbDrained, B.SatbDrained) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle and gating
//===----------------------------------------------------------------------===//

TEST(ConcurrentMarkTest, LifecycleArmsAndQuiescesTheMarker) {
  Heap Hp(markConfig(Mode::Concurrent, /*GcThreads=*/2));
  buildLists(Hp, 1, 200);
  // No cycle open: a flush handshake is a no-op, not a crash.
  Hp.satbFlushHandshake();
  ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
  EXPECT_FALSE(Hp.beginIncrementalMarkCycle()) << "no nested cycles";
  EXPECT_TRUE(Hp.incrementalCycleOpen());
  Hp.satbFlushHandshake();
  // An explicit collection demand quiesces the marker and closes.
  Hp.collect(CollectionKind::Full);
  EXPECT_FALSE(Hp.incrementalCycleOpen());
  EXPECT_EQ(Hp.stats().IncrementalCyclesOpened, 1u);
  EXPECT_EQ(Hp.stats().IncrementalCyclesClosed, 1u);
  // The concurrent mode never takes mutator-side mark steps.
  EXPECT_EQ(Hp.stats().MarkIncrements, 0u);
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
}

TEST(ConcurrentMarkTest, BackToBackCyclesReuseTheMarkerThread) {
  // One marker thread serves the heap's whole lifetime; every cycle
  // re-arms it and every close quiesces it. Three consecutive cycles
  // with mutation in between must each converge and stay auditable.
  Heap Hp(markConfig(Mode::Concurrent, /*GcThreads=*/4));
  std::vector<unsigned> Heads = buildLists(Hp, 2, 800);
  for (unsigned Cycle = 0; Cycle != 3; ++Cycle) {
    ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
    for (unsigned I = 0; I != 200; ++I)
      mutationOp(Hp, Heads, uint64_t(Cycle) * 200 + I);
    Hp.satbFlushHandshake();
    for (unsigned I = 0; I != 200; ++I)
      mutationOp(Hp, Heads, 1000 + uint64_t(Cycle) * 200 + I);
    Hp.finishIncrementalMarkCycle();
    EXPECT_FALSE(Hp.incrementalCycleOpen());
    EXPECT_EQ(Hp.stats().SatbDrained, Hp.stats().SatbLogged)
        << "cycle " << Cycle << " left SATB entries behind";
  }
  EXPECT_EQ(Hp.stats().IncrementalCyclesClosed, 3u);
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
}

TEST(ConcurrentMarkTest, AllocationDuringCycleSurvivesTheClose) {
  Heap Hp(markConfig(Mode::Concurrent, /*GcThreads=*/2));
  buildLists(Hp, 2, 500);
  ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
  // Births during the cycle are allocated black: kept by the closing
  // sweep even though the snapshot never reached them, with the marker
  // thread racing the whole time.
  unsigned NewRoot = Hp.createRoot(nullptr);
  for (unsigned I = 0; I != 300; ++I) {
    ObjRef Node = Hp.allocate(40, 1);
    ASSERT_NE(Node, nullptr);
    *reinterpret_cast<uint64_t *>(objectPayload(Node)) = 0xB1A0000 + I;
    if (ObjRef Head = Hp.root(NewRoot))
      Hp.writeRef(Node, 0, Head);
    Hp.setRoot(NewRoot, Node);
    if (I % 50 == 25)
      Hp.satbFlushHandshake();
  }
  ObjRef Large = Hp.allocate(16 * 1024, 0);
  ASSERT_NE(Large, nullptr);
  std::memset(objectPayload(Large), 0x5A, 16 * 1024);
  unsigned LargeRoot = Hp.createRoot(Large);
  Hp.finishIncrementalMarkCycle();
  ObjRef Node = Hp.root(NewRoot);
  for (unsigned I = 0; I != 300; ++I) {
    ASSERT_NE(Node, nullptr);
    EXPECT_EQ(*reinterpret_cast<uint64_t *>(objectPayload(Node)),
              0xB1A0000 + (299 - I));
    Node = Heap::readRef(Node, 0);
  }
  uint8_t *P = objectPayload(Hp.root(LargeRoot));
  for (unsigned I = 0; I != 16 * 1024; ++I)
    ASSERT_EQ(P[I], 0x5A);
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
}

//===----------------------------------------------------------------------===//
// Equivalence with stop-the-world and interleaved marking
//===----------------------------------------------------------------------===//

TEST(ConcurrentMarkTest, MatchesStopTheWorldAndInterleavedAcrossWorkers) {
  LegResult Stw = runLeg(Mode::Stw, 1, 256, /*MidCycleFailure=*/false);
  LegResult Inter = runLeg(Mode::Interleaved, 1, 256, false);
  expectCrossModeEqual(Inter, Stw, "interleaved vs STW");
  LegResult ConcSerial = runLeg(Mode::Concurrent, 1, 256, false);
  expectCrossModeEqual(ConcSerial, Stw, "concurrent(1 worker) vs STW");
  expectMarkingLegsEqual(ConcSerial, Inter,
                         "concurrent vs interleaved SATB ledger");
  EXPECT_GT(ConcSerial.SatbLogged, 0u)
      << "storm must exercise the barrier";
  EXPECT_EQ(ConcSerial.SatbDrained, ConcSerial.SatbLogged)
      << "every logged deletion must eventually drain";
  EXPECT_EQ(ConcSerial.MarkIncrements, 0u);
  for (unsigned Workers : {2u, 4u, 8u}) {
    LegResult Conc = runLeg(Mode::Concurrent, Workers, 256, false);
    expectMarkingLegsEqual(Conc, ConcSerial, "worker-count divergence");
    expectCrossModeEqual(Conc, Stw, "concurrent(N workers) vs STW");
  }
}

TEST(ConcurrentMarkTest, FinalHeapIsIndependentOfMarkerSliceQuota) {
  // MarkBudget in concurrent mode is the marker's per-slice quota: it
  // shapes the marker's pause/latency trade-off, never the outcome.
  // Budget 0 exercises DefaultMarkerSliceQuota.
  LegResult Base = runLeg(Mode::Concurrent, 2, 256, false);
  for (unsigned Budget : {0u, 64u, 4096u}) {
    LegResult R = runLeg(Mode::Concurrent, 2, Budget, false);
    expectMarkingLegsEqual(R, Base, "slice quota changed the outcome");
  }
  LegResult Again = runLeg(Mode::Concurrent, 2, 256, false);
  expectMarkingLegsEqual(Again, Base, "rerun divergence");
}

TEST(ConcurrentMarkTest, MidCycleDynamicFailureParksWhileMarkerRuns) {
  LegResult Stw = runLeg(Mode::Stw, 1, 256, /*MidCycleFailure=*/true);
  EXPECT_EQ(Stw.FailedLinesDynamic, 1u);
  for (unsigned Workers : {1u, 4u}) {
    LegResult Conc = runLeg(Mode::Concurrent, Workers, 256,
                            /*MidCycleFailure=*/true);
    expectCrossModeEqual(Conc, Stw, "mid-cycle failure leg vs STW");
  }
}

//===----------------------------------------------------------------------===//
// Multi-threaded mutators against the marker thread
//===----------------------------------------------------------------------===//

namespace {

RuntimeConfig poolConfig(unsigned Lanes) {
  RuntimeConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.HeapBytes = (8 * MiB) * Lanes;
  Config.ConcurrentMark = true;
  return Config;
}

} // namespace

TEST(ConcurrentMarkTest, PoolDigestIsBitIdenticalAcrossMutatorThreads) {
  // The lane turnstile owns the allocation order and the turn hook
  // drives cycle opens, flushes, and closes at fixed turn numbers, so
  // the marker thread's free-running schedule must be invisible: any
  // OS interleaving of mutator threads and the marker yields the same
  // final heap.
  constexpr unsigned Lanes = 4;
  uint64_t Digests[3] = {};
  uint64_t GcCounts[3] = {};
  uint64_t SatbLogged[3] = {};
  unsigned Idx = 0;
  for (unsigned Threads : {1u, 2u, 4u}) {
    Runtime Rt(poolConfig(Lanes));
    MutatorPoolOptions Opts;
    Opts.Lanes = Lanes;
    Opts.Threads = Threads;
    Opts.Seed = 99;
    Opts.VolumeScale = 0.25;
    MutatorPool Pool(Rt, *findProfile("luindex"), Opts);
    Pool.setTurnHook([&Rt](unsigned, uint64_t Turn) {
      // A fixed virtual-time schedule: open at 0 mod 1024, flush every
      // 128 turns while open, close at 768 mod 1024.
      if (Turn % 1024 == 0 && !Rt.incrementalCycleOpen())
        Rt.beginIncrementalMarkCycle();
      else if (Turn % 1024 == 768 && Rt.incrementalCycleOpen())
        Rt.finishIncrementalMarkCycle();
      else if (Turn % 128 == 64 && Rt.incrementalCycleOpen())
        Rt.satbFlushHandshake();
      return true;
    });
    ASSERT_TRUE(Pool.run());
    if (Rt.incrementalCycleOpen())
      Rt.finishIncrementalMarkCycle();
    Rt.collect(true);
    HeapAuditor Auditor(Rt.heap());
    EXPECT_TRUE(Auditor.audit().passed());
    Digests[Idx] = Auditor.digest(/*HashPayload=*/true);
    GcCounts[Idx] = Rt.stats().GcCount;
    SatbLogged[Idx] = Rt.heap().stats().SatbLogged;
    EXPECT_EQ(Rt.heap().stats().SatbDrained,
              Rt.heap().stats().SatbLogged);
    ++Idx;
  }
  EXPECT_EQ(Digests[0], Digests[1]);
  EXPECT_EQ(Digests[0], Digests[2]);
  EXPECT_EQ(GcCounts[0], GcCounts[1]);
  EXPECT_EQ(GcCounts[0], GcCounts[2]);
  EXPECT_EQ(SatbLogged[0], SatbLogged[1]);
  EXPECT_EQ(SatbLogged[0], SatbLogged[2]);
  EXPECT_GT(SatbLogged[0], 0u) << "the pool must exercise the barrier";
}

TEST(ConcurrentMarkTest, FlushHandshakeStormIsWatchdogClean) {
  // The acceptance storm: 100 explicit flush handshakes from the
  // active mutator thread while three peer threads sit on the
  // turnstile and the marker thread drains - every handshake must
  // complete without a watchdog round, and the SATB ledger must
  // balance at every close.
  constexpr unsigned Lanes = 4;
  constexpr uint64_t Rounds = 100;
  Runtime Rt(poolConfig(Lanes));

  std::atomic<unsigned> FailStops{0};
  Rt.safepoints().setFailStopHandler(
      [&](const std::string &) { ++FailStops; });

  MutatorPoolOptions Opts;
  Opts.Lanes = Lanes;
  Opts.Threads = 4;
  Opts.Seed = 1234;
  Opts.VolumeScale = 0.5;
  MutatorPool Pool(Rt, *findProfile("luindex"), Opts);

  uint64_t Handshakes = 0;
  uint64_t Closes = 0;
  Pool.setTurnHook([&](unsigned, uint64_t Turn) {
    if (Turn % 256 != 0 || Handshakes >= Rounds)
      return true;
    if (!Rt.incrementalCycleOpen())
      Rt.beginIncrementalMarkCycle();
    ++Handshakes;
    Rt.satbFlushHandshake();
    if (Handshakes % 10 == 0 && Rt.incrementalCycleOpen()) {
      Rt.finishIncrementalMarkCycle();
      ++Closes;
      EXPECT_EQ(Rt.heap().stats().SatbDrained,
                Rt.heap().stats().SatbLogged)
          << "close " << Closes << " left SATB entries behind";
    }
    return true;
  });

  ASSERT_TRUE(Pool.run());
  EXPECT_EQ(Handshakes, Rounds);
  EXPECT_EQ(FailStops.load(), 0u);
  EXPECT_EQ(Rt.safepoints().stats().WatchdogFired, 0u);

  if (Rt.incrementalCycleOpen())
    Rt.finishIncrementalMarkCycle();
  Rt.collect(true);
  EXPECT_EQ(Rt.heap().stats().SatbDrained, Rt.heap().stats().SatbLogged);
  HeapAuditor Auditor(Rt.heap());
  AuditReport Report = Auditor.audit();
  for (const std::string &V : Report.Violations)
    ADD_FAILURE() << "audit violation: " << V;
  EXPECT_TRUE(Report.passed());
}
