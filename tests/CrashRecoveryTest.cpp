//===- tests/CrashRecoveryTest.cpp - Kill/recover roundtrip tests ---------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "gc/Heap.h"
#include "heap/ImmixSpace.h"
#include "os/Os.h"
#include "os/OsKernel.h"

#include <gtest/gtest.h>

using namespace wearmem;

namespace {

RuntimeConfig testConfig() {
  RuntimeConfig Config;
  Config.HeapBytes = 4 * MiB;
  Config.Seed = 0xC4A5;
  return Config;
}

std::vector<Handle> populate(Runtime &Rt, size_t Bytes) {
  std::vector<Handle> Roots;
  for (size_t Allocated = 0; Allocated < Bytes; Allocated += 80) {
    Roots.push_back(Rt.allocateRooted(48, 2));
    EXPECT_NE(Roots.back().get(), nullptr);
  }
  return Roots;
}

/// Addresses of \p Count distinct live lines (marked at the current
/// epoch), spread over distinct blocks where possible.
std::vector<uint8_t *> liveLineAddrs(Runtime &Rt, size_t Count) {
  std::vector<uint8_t *> Addrs;
  ImmixSpace *Space = Rt.heap().immixSpace();
  if (!Space)
    return Addrs;
  Space->forEachBlock([&](Block &B) {
    if (Addrs.size() >= Count)
      return;
    for (unsigned Line = 0; Line != B.lineCount(); ++Line) {
      if (B.lineMark(Line) == Rt.heap().epoch()) {
        Addrs.push_back(B.lineAddr(Line));
        return; // one line per block
      }
    }
  });
  return Addrs;
}

} // namespace

TEST(CrashRecoveryTest, RecoverAfterDynamicFailures) {
  auto Rt = std::make_unique<Runtime>(testConfig());
  Rt->attachDurableState(Rt->bootstrapDurableState());
  auto Roots = populate(*Rt, MiB);
  Rt->collect(true);

  std::vector<uint8_t *> Addrs = liveLineAddrs(*Rt, 4);
  ASSERT_GE(Addrs.size(), 2u);
  Rt->heap().injectDynamicFailureBatch(Addrs);
  Rt->collect(true);
  EXPECT_GT(Rt->journal()->sizeBytes(), 0u);

  // Power off: all volatile state dies with the Runtime.
  std::shared_ptr<DurableState> DS = Rt->journal()->durableState();
  RuntimeConfig Base = Rt->config();
  uint64_t FailedBefore = DS->DeviceTruth.failedCount();
  Roots.clear();
  Rt.reset();

  RecoveryReport Report;
  auto Rt2 = Runtime::recover(Base, DS, Report);
  EXPECT_GT(Report.RecordsReplayed, 0u);
  EXPECT_EQ(Report.ChecksumFailures, 0u);
  EXPECT_EQ(Report.Divergences, 0u);
  EXPECT_TRUE(Report.AuditPassed);
  EXPECT_EQ(Report.AuditViolations, 0u);

  // The new incarnation is provisioned from the reconciled map and the
  // journal restarts empty over it.
  EXPECT_EQ(Rt2->heap().os().budgetFailureMap().failedCount(),
            FailedBefore);
  EXPECT_EQ(Rt2->journal()->sizeBytes(), 0u);

  // The recovered runtime keeps working.
  auto MoreRoots = populate(*Rt2, MiB / 2);
  Rt2->collect(true);
  EXPECT_FALSE(Rt2->outOfMemory());
}

TEST(CrashRecoveryTest, CrashMidAppendThenRecover) {
  auto Rt = std::make_unique<Runtime>(testConfig());
  Rt->attachDurableState(Rt->bootstrapDurableState());
  auto Roots = populate(*Rt, MiB);
  Rt->collect(true);

  std::vector<uint8_t *> Addrs = liveLineAddrs(*Rt, 4);
  ASSERT_GE(Addrs.size(), 2u);
  Rt->journal()->armCrash(CrashPoint::JournalAppend);
  EXPECT_THROW(Rt->heap().injectDynamicFailureBatch(Addrs), CrashSignal);

  std::shared_ptr<DurableState> DS = Rt->journal()->durableState();
  RuntimeConfig Base = Rt->config();
  Roots.clear();
  Rt.reset();

  RecoveryReport Report;
  auto Rt2 = Runtime::recover(Base, DS, Report);
  EXPECT_EQ(Report.TornRecords, 1u);
  EXPECT_GT(Report.TornTailBytes, 0u);
  // The torn line comes back from the device rescan, not as a divergence.
  EXPECT_GT(Report.DeviceOnlyLines, 0u);
  EXPECT_EQ(Report.Divergences, 0u);
  EXPECT_TRUE(Report.AuditPassed);
  EXPECT_EQ(Rt2->heap().os().budgetFailureMap().failedCount(),
            DS->DeviceTruth.failedCount());
}

TEST(CrashRecoveryTest, CrashMidUpcallThenRecover) {
  auto Rt = std::make_unique<Runtime>(testConfig());
  Rt->attachDurableState(Rt->bootstrapDurableState());
  auto Roots = populate(*Rt, MiB);
  Rt->collect(true);

  std::vector<uint8_t *> Addrs = liveLineAddrs(*Rt, 4);
  ASSERT_GE(Addrs.size(), 4u);
  Rt->journal()->armCrash(CrashPoint::InterruptUpcall);
  // The batch dies half-processed: the first half's failures are
  // journaled, the rest reach neither the journal nor the heap.
  EXPECT_THROW(Rt->heap().injectDynamicFailureBatch(Addrs), CrashSignal);

  std::shared_ptr<DurableState> DS = Rt->journal()->durableState();
  RuntimeConfig Base = Rt->config();
  Roots.clear();
  Rt.reset();

  RecoveryReport Report;
  auto Rt2 = Runtime::recover(Base, DS, Report);
  EXPECT_GT(Report.RecordsReplayed, 0u);
  EXPECT_EQ(Report.Divergences, 0u);
  EXPECT_TRUE(Report.AuditPassed);
}

TEST(CrashRecoveryTest, CrashBetweenRecoveryPhasesThenRetry) {
  auto Rt = std::make_unique<Runtime>(testConfig());
  Rt->attachDurableState(Rt->bootstrapDurableState());
  auto Roots = populate(*Rt, MiB);
  Rt->collect(true);
  std::vector<uint8_t *> Addrs = liveLineAddrs(*Rt, 2);
  ASSERT_GE(Addrs.size(), 1u);
  Rt->heap().injectDynamicFailureBatch(Addrs);
  Rt->collect(true);

  std::shared_ptr<DurableState> DS = Rt->journal()->durableState();
  RuntimeConfig Base = Rt->config();
  Roots.clear();
  Rt.reset();

  // The kill point between journal replay and heap rebuild fires inside
  // recover(); the arm is consumed, so the retry replays the same journal
  // and succeeds - recovery is idempotent.
  DS->ArmedCrash = CrashPoint::RecoveryPhase;
  RecoveryReport Report;
  EXPECT_THROW(Runtime::recover(Base, DS, Report), CrashSignal);
  auto Rt2 = Runtime::recover(Base, DS, Report);
  EXPECT_TRUE(Report.AuditPassed);
  EXPECT_EQ(Report.Divergences, 0u);
}

// A journal record the device rescan denies is counted as a divergence and
// never applied to the recovered map.
TEST(CrashRecoveryTest, JournalOnlyClaimIsReportedNotApplied) {
  auto Rt = std::make_unique<Runtime>(testConfig());
  Rt->attachDurableState(Rt->bootstrapDurableState());
  auto Roots = populate(*Rt, MiB / 2);
  Rt->collect(true);

  // Raw append skips the device-truth update: the journal now claims a
  // failure the device will deny on rescan.
  Rt->journal()->append(JournalKind::FailureMapUpdate, 7, 0, 0);

  std::shared_ptr<DurableState> DS = Rt->journal()->durableState();
  RuntimeConfig Base = Rt->config();
  Roots.clear();
  Rt.reset();

  RecoveryReport Report;
  auto Rt2 = Runtime::recover(Base, DS, Report);
  EXPECT_EQ(Report.JournalOnlyLines, 1u);
  EXPECT_EQ(Report.Divergences, 1u);
  EXPECT_FALSE(Rt2->heap().os().budgetFailureMap().isFailed(7));
  EXPECT_TRUE(Report.AuditPassed);
}

// Device-side recovery: the OS kernel journals wear failures the device
// reports and rebuilds its view from journal + rescan.
TEST(CrashRecoveryTest, OsKernelRecoversDeviceFailures) {
  PcmDeviceConfig Cfg;
  Cfg.NumPages = 16;
  Cfg.MeanLineLifetime = 1000;
  Cfg.LifetimeVariation = 0.0;
  Cfg.ClusteringEnabled = true;
  Cfg.RegionPages = 2;
  PcmDevice Device(Cfg);
  OsKernel Kernel(Device);

  auto DS = std::make_shared<DurableState>();
  DS->DeviceTruth = FailureMap(Device.softwareFailureMap().numLines());
  DS->Baseline = DS->DeviceTruth;
  MetadataJournal J(DS);
  Kernel.attachJournal(&J);

  EXPECT_TRUE(Device.forceFailLine(3));
  EXPECT_TRUE(Device.forceFailLine(200));
  EXPECT_TRUE(Device.forceFailLine(210));
  EXPECT_GT(J.sizeBytes(), 0u);

  DeviceRecovery Rec = Kernel.recoverFromJournal();
  EXPECT_GT(Rec.RecordsReplayed, 0u);
  EXPECT_EQ(Rec.ChecksumFailures, 0u);
  EXPECT_EQ(Rec.Divergences, 0u);
  EXPECT_TRUE(Rec.Reconciled == Device.softwareFailureMap());
  // Recovery compacts: the reconciled map is the new baseline.
  EXPECT_EQ(J.sizeBytes(), 0u);
  EXPECT_TRUE(DS->Baseline == Rec.Reconciled);
}

// Killing between the clustering remap and its journal record leaves the
// device ahead of the journal; the rescan resolves it without divergence
// (the line failure itself was journaled before the kill point).
TEST(CrashRecoveryTest, OsKernelCrashMidRemap) {
  PcmDeviceConfig Cfg;
  Cfg.NumPages = 16;
  Cfg.MeanLineLifetime = 1000;
  Cfg.LifetimeVariation = 0.0;
  Cfg.ClusteringEnabled = true;
  Cfg.RegionPages = 2;
  PcmDevice Device(Cfg);
  OsKernel Kernel(Device);

  auto DS = std::make_shared<DurableState>();
  DS->DeviceTruth = FailureMap(Device.softwareFailureMap().numLines());
  DS->Baseline = DS->DeviceTruth;
  MetadataJournal J(DS);
  Kernel.attachJournal(&J);

  J.armCrash(CrashPoint::Remap);
  EXPECT_THROW(Device.forceFailLine(5), CrashSignal);

  // The kernel's interrupt path was cut mid-flight; a real recovery
  // builds a fresh kernel over the surviving device.
  OsKernel Fresh(Device);
  Fresh.attachJournal(&J);
  DeviceRecovery Rec = Fresh.recoverFromJournal();
  EXPECT_EQ(Rec.Divergences, 0u);
  EXPECT_TRUE(Rec.Reconciled == Device.softwareFailureMap());
}

// Pool transitions are write-ahead logged: DRAM borrows and perfect-stock
// returns appear as PoolTransition records.
TEST(CrashRecoveryTest, PoolTransitionsJournaled) {
  FailureConfig Failures;
  Failures.Rate = 0.30;
  Failures.Seed = 0xBEE5;
  FailureAwareOs Os(64, Failures, PcmPageSize);

  auto DS = std::make_shared<DurableState>();
  DS->DeviceTruth = Os.budgetFailureMap();
  DS->Baseline = DS->DeviceTruth;
  MetadataJournal J(DS);
  Os.attachJournal(&J);

  // Exhaust perfect PCM so a fussy request must borrow DRAM, then return
  // a grant to the stock.
  std::vector<PageGrant> Held;
  while (Os.stats().DramBorrowed == 0) {
    std::optional<PageGrant> G = Os.allocPerfect(4);
    ASSERT_TRUE(G.has_value());
    Held.push_back(std::move(*G));
  }
  Os.freePerfect(std::move(Held.back()));
  Held.pop_back();

  JournalScan Scan = J.scan();
  bool SawBorrow = false, SawReturn = false;
  for (const JournalRecord &R : Scan.Records) {
    if (R.Kind != JournalKind::PoolTransition)
      continue;
    if (R.Arg16 == static_cast<uint16_t>(PoolTransitionKind::DramBorrow))
      SawBorrow = true;
    if (R.Arg16 ==
        static_cast<uint16_t>(PoolTransitionKind::PerfectReturn))
      SawReturn = true;
  }
  EXPECT_TRUE(SawBorrow);
  EXPECT_TRUE(SawReturn);
  EXPECT_EQ(Scan.ChecksumFailures, 0u);
}
