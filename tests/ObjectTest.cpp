//===- tests/ObjectTest.cpp - Object model unit tests ---------------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/Object.h"

#include <gtest/gtest.h>

#include <vector>

using namespace wearmem;

TEST(ObjectTest, SizeComputation) {
  EXPECT_EQ(objectBytesFor(0, 0), 16u);
  EXPECT_EQ(objectBytesFor(8, 0), 24u);
  EXPECT_EQ(objectBytesFor(0, 2), 32u);
  EXPECT_EQ(objectBytesFor(1, 0), 24u); // Rounded to alignment.
  EXPECT_EQ(objectBytesFor(100, 3), (16u + 24u + 100u + 7u) & ~7u);
}

TEST(ObjectTest, HeaderRoundTrip) {
  alignas(8) uint8_t Mem[256] = {};
  initObject(Mem, 128, 4, FlagPinned);
  EXPECT_EQ(objectSize(Mem), 128u);
  EXPECT_EQ(objectNumRefs(Mem), 4u);
  EXPECT_TRUE(objectHasFlag(Mem, FlagPinned));
  EXPECT_FALSE(objectHasFlag(Mem, FlagLarge));
  EXPECT_EQ(objectMark(Mem), 0u);

  setObjectMark(Mem, 17);
  EXPECT_EQ(objectMark(Mem), 17u);
  EXPECT_EQ(objectSize(Mem), 128u); // Untouched.
  EXPECT_TRUE(objectHasFlag(Mem, FlagPinned));

  setObjectFlag(Mem, FlagLogged);
  EXPECT_TRUE(objectHasFlag(Mem, FlagLogged));
  clearObjectFlag(Mem, FlagLogged);
  EXPECT_FALSE(objectHasFlag(Mem, FlagLogged));
  EXPECT_TRUE(objectHasFlag(Mem, FlagPinned));
  EXPECT_EQ(objectMark(Mem), 17u);
}

TEST(ObjectTest, RefSlotsAndPayload) {
  alignas(8) uint8_t Mem[256] = {};
  initObject(Mem, 96, 3, 0);
  for (unsigned Slot = 0; Slot != 3; ++Slot)
    EXPECT_EQ(*refSlot(Mem, Slot), nullptr);
  alignas(8) uint8_t Other[16] = {};
  *refSlot(Mem, 1) = Other;
  EXPECT_EQ(*refSlot(Mem, 1), Other);
  EXPECT_EQ(*refSlot(Mem, 0), nullptr);

  EXPECT_EQ(objectPayload(Mem), Mem + 16 + 3 * 8);
  EXPECT_EQ(objectPayloadSize(Mem), 96u - 16u - 24u);
}

TEST(ObjectTest, Forwarding) {
  alignas(8) uint8_t Old[64] = {}, New[64] = {};
  initObject(Old, 64, 0, 0);
  EXPECT_FALSE(isForwarded(Old));
  forwardObject(Old, New);
  EXPECT_TRUE(isForwarded(Old));
  EXPECT_EQ(forwardee(Old), New);
  // Size stays readable in the forwarded header.
  EXPECT_EQ(objectSize(Old), 64u);
}

class ObjectPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint16_t>> {};

TEST_P(ObjectPropertyTest, EncodingIsLossless) {
  auto [Payload, NumRefs] = GetParam();
  uint32_t Size = objectBytesFor(Payload, NumRefs);
  std::vector<uint8_t> Mem(Size + 8, 0xCD);
  uint8_t *Obj = Mem.data();
  initObject(Obj, Size, NumRefs, 0);
  EXPECT_EQ(objectSize(Obj), Size);
  EXPECT_EQ(objectNumRefs(Obj), NumRefs);
  EXPECT_GE(objectPayloadSize(Obj), Payload);
  for (unsigned Slot = 0; Slot != NumRefs; ++Slot)
    EXPECT_EQ(*refSlot(Obj, Slot), nullptr);
  // The byte after the object is untouched.
  EXPECT_EQ(Mem[Size], 0xCD);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ObjectPropertyTest,
    ::testing::Combine(::testing::Values(0u, 1u, 8u, 100u, 4096u, 65535u),
                       ::testing::Values(uint16_t(0), uint16_t(1),
                                         uint16_t(7), uint16_t(64),
                                         uint16_t(1000))));
