//===- tests/ParallelGcTest.cpp - Parallel collection engine tests --------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The parallel collection engine's contract: the post-collection heap
// state is bit-identical to the serial collector's under any worker
// count, the mark frontier stays bounded on hostile graph shapes, and
// dynamic-failure interrupts that arrive mid-mark are deferred to the
// end-of-cycle safepoint without being lost.
//
//===----------------------------------------------------------------------===//

#include "gc/GcWorkers.h"
#include "gc/Heap.h"
#include "gc/HeapAuditor.h"
#include "os/OsKernel.h"
#include "pcm/PcmDevice.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace wearmem;

namespace {

HeapConfig parallelConfig(unsigned GcThreads, size_t HeapBytes = 32 * MiB) {
  HeapConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.BudgetPages = HeapBytes / PcmPageSize;
  Config.GcThreads = GcThreads;
  Config.Failures.Rate = 0.02;
  Config.Failures.Seed = 7;
  Config.DefragFreeFraction = 0.35;
  return Config;
}

/// Deterministic mini-mutator: rooted linked lists with pinned stragglers
/// and burst churn (evacuation fodder), plus a wide fan-out hub. Raw
/// references never live across an allocation - every Hp.allocate may
/// run a moving collection.
void buildWorkload(Heap &Hp, unsigned Lists, unsigned ListLen,
                   unsigned HubRefs) {
  for (unsigned L = 0; L != Lists && !Hp.outOfMemory(); ++L) {
    unsigned HeadRoot = Hp.createRoot(nullptr);
    for (unsigned I = 0; I != ListLen; ++I) {
      bool Pin = (I % 97) == 0;
      ObjRef Node = Hp.allocate(/*PayloadBytes=*/48, /*NumRefs=*/2, Pin);
      if (!Node)
        break;
      *reinterpret_cast<uint64_t *>(objectPayload(Node)) =
          (uint64_t(L) << 32) | I;
      if (ObjRef Head = Hp.root(HeadRoot))
        Hp.writeRef(Node, 0, Head);
      Hp.setRoot(HeadRoot, Node);
      if (I % 16 == 15)
        for (unsigned C = 0; C != 32; ++C)
          Hp.allocate(216, 0);
    }
  }
  if (HubRefs != 0 && !Hp.outOfMemory()) {
    ObjRef Hub =
        Hp.allocate(/*PayloadBytes=*/16, static_cast<uint16_t>(HubRefs));
    ASSERT_NE(Hub, nullptr);
    unsigned HubRoot = Hp.createRoot(Hub);
    for (unsigned I = 0; I != HubRefs; ++I) {
      ObjRef Leaf = Hp.allocate(32, 0);
      if (!Leaf)
        break;
      Hp.writeRef(Hp.root(HubRoot), I, Leaf);
    }
  }
}

struct HeapFingerprint {
  uint64_t DigestAfterFulls = 0;
  uint64_t DigestAfterNursery = 0;
  uint64_t GcCount = 0;
  uint64_t FullGcCount = 0;
  uint64_t ObjectsAllocated = 0;
  uint64_t BytesAllocated = 0;
  uint64_t ObjectsEvacuated = 0;
  uint64_t LinesSwept = 0;
  uint64_t BlocksRetired = 0;

  bool operator==(const HeapFingerprint &O) const {
    return DigestAfterFulls == O.DigestAfterFulls &&
           DigestAfterNursery == O.DigestAfterNursery &&
           GcCount == O.GcCount && FullGcCount == O.FullGcCount &&
           ObjectsAllocated == O.ObjectsAllocated &&
           BytesAllocated == O.BytesAllocated &&
           ObjectsEvacuated == O.ObjectsEvacuated &&
           LinesSwept == O.LinesSwept && BlocksRetired == O.BlocksRetired;
  }
};

HeapFingerprint runWorkerCountConfig(unsigned GcThreads) {
  Heap Hp(parallelConfig(GcThreads));
  buildWorkload(Hp, /*Lists=*/4, /*ListLen=*/6000, /*HubRefs=*/3000);
  EXPECT_FALSE(Hp.outOfMemory());
  for (unsigned I = 0; I != 3; ++I)
    Hp.collect(CollectionKind::Full);
  HeapAuditor Auditor(Hp);
  HeapFingerprint F;
  F.DigestAfterFulls = Auditor.digest(/*HashPayload=*/true);
  Hp.collect(CollectionKind::Nursery);
  F.DigestAfterNursery = Auditor.digest(/*HashPayload=*/true);
  const HeapStats &S = Hp.stats();
  F.GcCount = S.GcCount;
  F.FullGcCount = S.FullGcCount;
  F.ObjectsAllocated = S.ObjectsAllocated;
  F.BytesAllocated = S.BytesAllocated;
  F.ObjectsEvacuated = S.ObjectsEvacuated;
  F.LinesSwept = S.LinesSwept;
  F.BlocksRetired = S.BlocksRetired;
  EXPECT_TRUE(Auditor.audit().passed());
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism across worker counts
//===----------------------------------------------------------------------===//

TEST(ParallelGcTest, WorkerCountSweepProducesIdenticalHeaps) {
  HeapFingerprint Serial = runWorkerCountConfig(1);
  EXPECT_GT(Serial.ObjectsEvacuated, 0u)
      << "workload must exercise evacuation for the sweep to mean much";
  for (unsigned Threads : {2u, 4u, 8u}) {
    HeapFingerprint F = runWorkerCountConfig(Threads);
    EXPECT_TRUE(F == Serial)
        << Threads << "-worker heap diverged from serial: digests "
        << std::hex << F.DigestAfterFulls << "/" << F.DigestAfterNursery
        << " vs " << Serial.DigestAfterFulls << "/"
        << Serial.DigestAfterNursery;
  }
}

//===----------------------------------------------------------------------===//
// Mid-mark dynamic failures are deferred, never lost
//===----------------------------------------------------------------------===//

TEST(ParallelGcTest, MidMarkDynamicFailureIsDeferredAndRecovered) {
  Heap Hp(parallelConfig(2, 16 * MiB));
  unsigned Root = Hp.createRoot(nullptr);
  for (unsigned I = 0; I != 2000; ++I) {
    ObjRef Node = Hp.allocate(48, 1);
    ASSERT_NE(Node, nullptr);
    if (ObjRef Head = Hp.root(Root))
      Hp.writeRef(Node, 0, Head);
    Hp.setRoot(Root, Node);
  }
  // A stable line to fail: a pinned object's address survives the
  // collection the hook interrupts.
  ObjRef Victim = Hp.allocate(64, 0, /*Pinned=*/true);
  ASSERT_NE(Victim, nullptr);
  Hp.createRoot(Victim);

  bool Injected = false;
  Hp.setMarkPhaseHook([&] {
    if (Injected)
      return;
    Injected = true;
    // A failure interrupt arriving from outside the collector while the
    // mark phase runs: must be parked, not applied mid-trace.
    std::thread Interrupter(
        [&] { Hp.injectDynamicFailureBatch({Victim}); });
    Interrupter.join();
    EXPECT_EQ(Hp.stats().MarkPhaseDeferredInterrupts, 1u);
    EXPECT_EQ(Hp.stats().FailedLinesDynamic, 0u)
        << "the failure must not be applied while marking";
  });
  Hp.collect(CollectionKind::Full);
  ASSERT_TRUE(Injected);

  // Drained at the end-of-cycle safepoint: the line is fenced now and
  // the deferred defragmenting collection is pending.
  EXPECT_EQ(Hp.stats().MarkPhaseDeferredInterrupts, 1u);
  EXPECT_EQ(Hp.stats().FailedLinesDynamic, 1u);
  EXPECT_TRUE(Hp.pendingFailureRecovery());

  Hp.setMarkPhaseHook(nullptr);
  Hp.collect(CollectionKind::Full);
  EXPECT_FALSE(Hp.pendingFailureRecovery());
  HeapAuditor Auditor(Hp);
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << (Report.Violations.empty()
                                       ? ""
                                       : Report.Violations.front());
}

//===----------------------------------------------------------------------===//
// Bounded mark frontier
//===----------------------------------------------------------------------===//

TEST(ParallelGcTest, MarkFrontierStaysBoundedOnDeepAndWideGraphs) {
  // A 150k-deep list would have pushed 150k entries on the old serial
  // mark stack; a 20k-wide hub explodes the frontier in one scan. The
  // work list must keep every deque at or below its chunk bound and
  // spill the rest to the (drained) overflow list instead.
  HeapFingerprint Prints[2];
  for (unsigned Cfg = 0; Cfg != 2; ++Cfg) {
    unsigned Threads = Cfg == 0 ? 1 : 2;
    Heap Hp(parallelConfig(Threads, 64 * MiB));
    unsigned Root = Hp.createRoot(nullptr);
    for (unsigned I = 0; I != 150000; ++I) {
      ObjRef Node = Hp.allocate(16, 1);
      ASSERT_NE(Node, nullptr);
      if (ObjRef Head = Hp.root(Root))
        Hp.writeRef(Node, 0, Head);
      Hp.setRoot(Root, Node);
    }
    constexpr unsigned HubRefs = 20000;
    ObjRef Hub = Hp.allocate(16, HubRefs);
    ASSERT_NE(Hub, nullptr);
    unsigned HubRoot = Hp.createRoot(Hub);
    for (unsigned I = 0; I != HubRefs; ++I) {
      ObjRef Leaf = Hp.allocate(24, 0);
      ASSERT_NE(Leaf, nullptr);
      Hp.writeRef(Hp.root(HubRoot), I, Leaf);
    }
    Hp.collect(CollectionKind::Full);
    EXPECT_LE(Hp.lastMarkPhaseDebug().DequePeakChunks,
              Heap::MarkMaxDequeChunks);
    HeapAuditor Auditor(Hp);
    Prints[Cfg].DigestAfterFulls = Auditor.digest(/*HashPayload=*/true);
    Prints[Cfg].ObjectsEvacuated = Hp.stats().ObjectsEvacuated;
  }
  EXPECT_EQ(Prints[0].DigestAfterFulls, Prints[1].DigestAfterFulls);
  EXPECT_EQ(Prints[0].ObjectsEvacuated, Prints[1].ObjectsEvacuated);
}

//===----------------------------------------------------------------------===//
// Worker pool scheduling primitives
//===----------------------------------------------------------------------===//

TEST(ParallelGcTest, ParallelChunksCoversEveryIndexExactlyOnce) {
  GcWorkerPool Pool(4);
  EXPECT_EQ(Pool.workers(), 4u);
  constexpr size_t Count = 10000;
  std::vector<std::atomic<uint32_t>> Hits(Count);
  Pool.parallelChunks(Count,
                      [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Count; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "index " << I;
  // Degenerate sizes: empty and smaller than the worker count.
  Pool.parallelChunks(0, [&](size_t) { FAIL(); });
  std::atomic<uint32_t> Small{0};
  Pool.parallelChunks(3, [&](size_t) { Small.fetch_add(1); });
  EXPECT_EQ(Small.load(), 3u);
}

TEST(ParallelGcTest, RunOnAllReachesEveryWorkerAndBarriers) {
  GcWorkerPool Pool(4);
  std::vector<std::atomic<uint32_t>> PerWorker(4);
  for (unsigned Round = 0; Round != 50; ++Round)
    Pool.runOnAll([&](unsigned Wk) {
      ASSERT_LT(Wk, 4u);
      PerWorker[Wk].fetch_add(1);
    });
  // The return is a barrier, so all increments are visible here.
  for (unsigned Wk = 0; Wk != 4; ++Wk)
    EXPECT_EQ(PerWorker[Wk].load(), 50u);
}

//===----------------------------------------------------------------------===//
// OS upcall gating (the kernel side of the mid-mark deferral)
//===----------------------------------------------------------------------===//

TEST(ParallelGcTest, UpcallGateDefersInterruptsUntilReleased) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.MeanLineLifetime = 100;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);

  unsigned UpCalls = 0;
  Kernel.registerHandler(
      [&](const std::vector<FailureRecord> &) { ++UpCalls; });

  bool InGc = true;
  Kernel.setUpcallGate([&] { return InGc; });

  Device.injectImminentFailure(5);
  uint8_t Data[PcmLineSize];
  std::memset(Data, 0xAB, sizeof(Data));
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Ok);

  // Gated: the interrupt stayed buffered, nothing reached the runtime.
  EXPECT_EQ(UpCalls, 0u);
  EXPECT_EQ(Kernel.stats().DeferredInterrupts, 1u);
  EXPECT_EQ(Device.pendingFailures().size(), 1u);

  // Gate released (collection over): the next service call drains the
  // buffered failure through the normal upcall path.
  InGc = false;
  Kernel.handleFailures();
  EXPECT_EQ(UpCalls, 1u);
  EXPECT_EQ(Kernel.stats().FailuresResolved, 1u);
  EXPECT_TRUE(Device.pendingFailures().empty());
}
