//===- tests/BlockScanTest.cpp - Word-parallel vs byte-scan oracle --------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Differential fuzz for the word-parallel line scanner: randomized mark
// tables (live epochs, stale epochs, zeroes, failed lines), conservative
// and exact marking, single- and dual-epoch queries, and interleaved
// mutations (markLine / failLine / unfailPage) that exercise the
// incremental bitmap maintenance. The byte-scan oracle is the reference
// everywhere.
//
//===----------------------------------------------------------------------===//

#include "heap/Block.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

using namespace wearmem;

namespace {

struct ScanFixture {
  explicit ScanFixture(size_t LineSize) {
    Config.LineSize = LineSize;
    Mem = static_cast<uint8_t *>(
        std::aligned_alloc(Config.BlockSize, Config.BlockSize));
    TheBlock = std::make_unique<Block>(Mem, Config);
  }
  ~ScanFixture() { std::free(Mem); }

  HeapConfig Config;
  uint8_t *Mem;
  std::unique_ptr<Block> TheBlock;
};

/// Fills the mark table with a random mixture of free, live (at one of
/// the query epochs), stale, and failed lines, all through the public
/// mutation API so the derived bitmaps are exercised.
void randomizeMarks(Block &B, Rng &R, uint8_t SweepEpoch,
                    uint8_t MarkEpoch) {
  for (unsigned Line = 0; Line != B.lineCount(); ++Line) {
    switch (R.nextBelow(8)) {
    case 0:
      B.failLine(Line);
      break;
    case 1:
    case 2:
      B.markLine(Line, SweepEpoch);
      break;
    case 3:
      B.markLine(Line, MarkEpoch);
      break;
    case 4:
      // Stale epoch: must read as free.
      B.markLine(Line, static_cast<uint8_t>(1 + R.nextBelow(MaxEpoch)));
      break;
    default:
      B.markLine(Line, 0);
      break;
    }
  }
}

/// Compares the complete hole sequences of the word-parallel scanner and
/// the byte oracle, plus the sweep counters, and (at equal epochs) pins
/// the sweep free-line total to the sum of findHole's hole sizes.
void expectEquivalent(const Block &B, uint8_t SweepEpoch,
                      uint8_t MarkEpoch, bool Conservative) {
  Hole W, O;
  unsigned From = 0;
  unsigned HoleLines = 0;
  unsigned HoleCount = 0;
  while (true) {
    bool WordFound =
        B.findHole(From, SweepEpoch, MarkEpoch, Conservative, W);
    bool OracleFound =
        B.findHoleOracle(From, SweepEpoch, MarkEpoch, Conservative, O);
    ASSERT_EQ(WordFound, OracleFound)
        << "from=" << From << " epochs=(" << unsigned(SweepEpoch) << ","
        << unsigned(MarkEpoch) << ") cons=" << Conservative;
    if (!WordFound)
      break;
    ASSERT_EQ(W.StartLine, O.StartLine);
    ASSERT_EQ(W.EndLine, O.EndLine);
    HoleLines += W.lines();
    ++HoleCount;
    From = W.EndLine;
  }
  Block::SweepResult Word = B.sweepCount(SweepEpoch, Conservative);
  Block::SweepResult Oracle = B.sweepCountOracle(SweepEpoch, Conservative);
  EXPECT_EQ(Word.FreeLines, Oracle.FreeLines);
  EXPECT_EQ(Word.Holes, Oracle.Holes);
  EXPECT_EQ(Word.Empty, Oracle.Empty);
  if (SweepEpoch == MarkEpoch) {
    // Regression: sweep and findHole share one availability definition,
    // so at equal epochs the sweep's free-line count must be exactly the
    // lines findHole hands out, and the hole tallies must agree. (They
    // once diverged on the conservative implicit-live rule, letting the
    // freeLines() fast-reject admit blocks with no fitting hole.)
    EXPECT_EQ(Word.FreeLines, HoleLines);
    EXPECT_EQ(Word.Holes, HoleCount);
  }
}

} // namespace

TEST(BlockScanTest, DifferentialFuzzRandomTables) {
  Rng R(0xB10C5CAA7ULL);
  for (size_t LineSize : {64u, 256u, 1024u}) {
    for (int Round = 0; Round != 60; ++Round) {
      ScanFixture F(LineSize);
      uint8_t SweepEpoch = static_cast<uint8_t>(1 + R.nextBelow(MaxEpoch));
      uint8_t MarkEpoch = R.nextBool(0.5)
                              ? SweepEpoch
                              : nextEpoch(SweepEpoch);
      randomizeMarks(*F.TheBlock, R, SweepEpoch, MarkEpoch);
      bool Conservative = R.nextBool(0.5);
      expectEquivalent(*F.TheBlock, SweepEpoch, MarkEpoch, Conservative);
      // Arbitrary start lines, not just hole-to-hole iteration.
      for (int Probe = 0; Probe != 8; ++Probe) {
        unsigned From = static_cast<unsigned>(
            R.nextBelow(F.TheBlock->lineCount() + 2));
        Hole W, O;
        bool WordFound = F.TheBlock->findHole(From, SweepEpoch, MarkEpoch,
                                              Conservative, W);
        bool OracleFound = F.TheBlock->findHoleOracle(
            From, SweepEpoch, MarkEpoch, Conservative, O);
        ASSERT_EQ(WordFound, OracleFound);
        if (WordFound) {
          ASSERT_EQ(W.StartLine, O.StartLine);
          ASSERT_EQ(W.EndLine, O.EndLine);
        }
      }
    }
  }
}

TEST(BlockScanTest, DifferentialFuzzIncrementalMutations) {
  // The bitmaps are maintained incrementally; interleave mutations and
  // queries so stale-cache bugs cannot hide behind rebuilds.
  Rng R(0xFEEDF00DULL);
  for (int Round = 0; Round != 30; ++Round) {
    ScanFixture F(256);
    Block &B = *F.TheBlock;
    uint8_t SweepEpoch = static_cast<uint8_t>(1 + R.nextBelow(MaxEpoch));
    uint8_t MarkEpoch = nextEpoch(SweepEpoch);
    size_t Pages = F.Config.BlockSize / PcmPageSize;
    for (int Step = 0; Step != 200; ++Step) {
      unsigned Line =
          static_cast<unsigned>(R.nextBelow(B.lineCount()));
      switch (R.nextBelow(6)) {
      case 0:
        B.failLine(Line);
        break;
      case 1:
        // Both restore flavors: free (intake) and live-quarantined (the
        // collector's pinned-page remap).
        B.unfailPage(static_cast<unsigned>(R.nextBelow(Pages)),
                     R.nextBelow(2) ? MarkEpoch : 0);
        break;
      case 2:
        B.markLine(Line, SweepEpoch);
        break;
      case 3:
        B.markLine(Line, MarkEpoch);
        break;
      case 4:
        B.markLine(Line, 0);
        break;
      default:
        // A stale epoch distinct from both query epochs.
        B.markLine(Line, static_cast<uint8_t>(1 + R.nextBelow(MaxEpoch)));
        break;
      }
      if (Step % 10 == 0)
        expectEquivalent(B, SweepEpoch, MarkEpoch,
                         /*Conservative=*/Step % 20 == 0);
    }
    expectEquivalent(B, SweepEpoch, MarkEpoch, true);
    expectEquivalent(B, SweepEpoch, SweepEpoch, true);
  }
}

TEST(BlockScanTest, SweepFreeLinesMatchFindHoleTotal) {
  // Direct pin of the sweep-vs-findHole count agreement on the pattern
  // that exposed the divergence: conservative marking with a live line
  // whose follower is free, next to failed lines.
  ScanFixture F(256);
  Block &B = *F.TheBlock;
  B.markLine(2, 5);
  B.failLine(3);
  B.markLine(10, 5);
  B.markLine(11, 5);
  B.failLine(13);
  Block::SweepResult R = B.sweep(5, /*Conservative=*/true);
  Hole H;
  unsigned From = 0;
  unsigned Total = 0;
  while (B.findHole(From, 5, 5, true, H)) {
    Total += H.lines();
    From = H.EndLine;
  }
  EXPECT_EQ(R.FreeLines, Total);
  EXPECT_EQ(B.freeLines(), Total);
}

TEST(BlockScanTest, WordScanCostsFewerStepsThanOracle) {
  // The point of the rewrite: full-block scans touch lineCount()/64
  // words instead of lineCount() bytes.
  ScanFixture F(256);
  Block &B = *F.TheBlock;
  B.markLine(40, 3);
  B.failLine(90);
  Block::ScanCounters &Counters = Block::scanCounters();
  Counters.reset();
  Block::SweepResult Word = B.sweepCount(3, true);
  uint64_t WordSteps = Counters.WordSteps;
  Counters.reset();
  Block::SweepResult Oracle = B.sweepCountOracle(3, true);
  uint64_t ByteSteps = Counters.ByteSteps;
  EXPECT_EQ(Word.FreeLines, Oracle.FreeLines);
  EXPECT_LT(WordSteps * 8, ByteSteps)
      << "word=" << WordSteps << " byte=" << ByteSteps;
}

TEST(BlockScanTest, FittingCursorInvariants) {
  ScanFixture F(256);
  Block &B = *F.TheBlock;
  // Holes: [0,4) and [5,9) after marking line 4 and everything >= 9.
  B.markLine(4, 2);
  for (unsigned Line = 9; Line != B.lineCount(); ++Line)
    B.markLine(Line, 2);
  B.sweep(2, /*Conservative=*/false);
  EXPECT_EQ(B.fittingScanStart(1), 0u);
  // No 8-line hole anywhere: the cursor records block-wide futility.
  B.noteNoFittingHole(8);
  EXPECT_EQ(B.fittingScanStart(8), B.lineCount());
  EXPECT_EQ(B.fittingScanStart(9), B.lineCount());
  // A smaller request must restart from the top.
  EXPECT_EQ(B.fittingScanStart(3), 0u);
  // Sweeping (hole layout rebuilt) resets the memo.
  B.sweep(2, false);
  EXPECT_EQ(B.fittingScanStart(8), 0u);
  // So does restoring failed lines (holes can grow)...
  B.noteNoFittingHole(8);
  B.failLine(20);
  EXPECT_EQ(B.fittingScanStart(8), B.lineCount()); // Failing only shrinks.
  B.unfailPage(1, /*LiveEpoch=*/0);
  EXPECT_EQ(B.fittingScanStart(8), 0u);
  // ...and zeroing a mark.
  B.noteNoFittingHole(8);
  B.markLine(4, 0);
  EXPECT_EQ(B.fittingScanStart(8), 0u);
}
