//===- tests/FailureMapTest.cpp - Failure map and clustering tests --------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "pcm/FailureMap.h"

#include <gtest/gtest.h>

using namespace wearmem;

TEST(FailureMapTest, UniformExactCount) {
  Rng Rand(1);
  FailureMap Map = FailureMap::uniform(64 * PcmLinesPerPage, 0.25, Rand);
  EXPECT_EQ(Map.failedCount(), 64 * PcmLinesPerPage / 4);
  EXPECT_NEAR(Map.failedFraction(), 0.25, 1e-9);
}

TEST(FailureMapTest, UniformZeroAndDeterministic) {
  Rng A(9), B(9);
  FailureMap MapA = FailureMap::uniform(4096, 0.1, A);
  FailureMap MapB = FailureMap::uniform(4096, 0.1, B);
  EXPECT_TRUE(MapA == MapB);
  Rng C(9);
  FailureMap Zero = FailureMap::uniform(4096, 0.0, C);
  EXPECT_EQ(Zero.failedCount(), 0u);
}

TEST(FailureMapTest, BernoulliApproximatesRate) {
  Rng Rand(5);
  FailureMap Map =
      FailureMap::uniform(100000, 0.3, Rand, /*Exact=*/false);
  EXPECT_NEAR(Map.failedFraction(), 0.3, 0.01);
}

TEST(FailureMapTest, ClusterLimitGranularity) {
  Rng Rand(3);
  // 16-line clusters: every failure run must be a multiple of 16 lines,
  // aligned to 16.
  FailureMap Map = FailureMap::clusterLimit(8192, 0.25, 16, Rand);
  EXPECT_EQ(Map.failedCount(), 8192u / 4);
  for (size_t Cluster = 0; Cluster != 8192 / 16; ++Cluster) {
    bool First = Map.isFailed(Cluster * 16);
    for (size_t I = 1; I != 16; ++I)
      EXPECT_EQ(Map.isFailed(Cluster * 16 + I), First)
          << "cluster " << Cluster << " not uniform";
  }
}

TEST(FailureMapTest, PageWordEncoding) {
  FailureMap Map(2 * PcmLinesPerPage);
  Map.fail(0);
  Map.fail(63);
  Map.fail(64); // First line of page 1.
  EXPECT_EQ(Map.pageWord(0), (uint64_t(1) << 63) | 1u);
  EXPECT_EQ(Map.pageWord(1), 1u);
  EXPECT_EQ(Map.failedLinesInPage(0), 2u);
  EXPECT_FALSE(Map.pageIsPerfect(0));
  EXPECT_EQ(Map.perfectPageCount(), 0u);
}

TEST(FailureMapTest, MetadataLineCounts) {
  // 1-page region: 64 lines -> 65 entries x 6 bits = 390 bits -> 1 line.
  EXPECT_EQ(FailureMap::metadataLines(1), 1u);
  // 2-page region: 128 lines -> 129 x 7 = 903 bits -> 2 lines (the paper
  // quotes 889 bits with slightly different bookkeeping; both round to 2).
  EXPECT_EQ(FailureMap::metadataLines(2), 2u);
  // 4-page region: 256 lines -> 257 x 8 = 2056 bits -> 5 lines; one cost
  // of larger regions that Section 7.3 cautions about.
  EXPECT_EQ(FailureMap::metadataLines(4), 5u);
}

TEST(FailureMapTest, PushClusteredMovesFailuresToEnds) {
  Rng Rand(17);
  size_t Pages = 64;
  FailureMap Base =
      FailureMap::uniform(Pages * PcmLinesPerPage, 0.2, Rand);
  ClusterOptions Opts;
  Opts.RegionPages = 2;
  FailureMap Clustered = Base.pushClustered(Opts);

  size_t LinesPerRegion = 2 * PcmLinesPerPage;
  for (size_t Region = 0; Region != Pages / 2; ++Region) {
    size_t BaseLine = Region * LinesPerRegion;
    // Count failures in the region; in the clustered map they must be
    // contiguous at the region's start (even) or end (odd).
    size_t Failed = 0;
    for (size_t I = 0; I != LinesPerRegion; ++I)
      Failed += Clustered.isFailed(BaseLine + I);
    for (size_t I = 0; I != LinesPerRegion; ++I) {
      bool ShouldFail = (Region % 2 == 0) ? I < Failed
                                          : I >= LinesPerRegion - Failed;
      EXPECT_EQ(Clustered.isFailed(BaseLine + I), ShouldFail)
          << "region " << Region << " line " << I;
    }
  }
}

TEST(FailureMapTest, PushClusteredChargesMetadata) {
  // One failure in a 2-page region costs the 2 metadata lines too.
  FailureMap Base(2 * PcmLinesPerPage);
  Base.fail(77);
  ClusterOptions Opts;
  Opts.RegionPages = 2;
  FailureMap Clustered = Base.pushClustered(Opts);
  EXPECT_EQ(Clustered.failedCount(), 1u + 2u);
  // Without metadata charging, the count is preserved exactly.
  Opts.ChargeMetadata = false;
  FailureMap Pure = Base.pushClustered(Opts);
  EXPECT_EQ(Pure.failedCount(), 1u);
}

TEST(FailureMapTest, PushClusteredUntouchedWhenPerfect) {
  FailureMap Base(4 * PcmLinesPerPage);
  ClusterOptions Opts;
  Opts.RegionPages = 2;
  FailureMap Clustered = Base.pushClustered(Opts);
  EXPECT_EQ(Clustered.failedCount(), 0u);
}

TEST(FailureMapTest, TwoPageClusteringYieldsPerfectPages) {
  // The paper: with two-page clustering and failures in < 50% of the
  // region, at least one page per region is logically perfect.
  Rng Rand(23);
  size_t Pages = 256;
  FailureMap Base =
      FailureMap::uniform(Pages * PcmLinesPerPage, 0.25, Rand);
  ClusterOptions Opts;
  Opts.RegionPages = 2;
  FailureMap Clustered = Base.pushClustered(Opts);
  // Count regions whose failures (plus metadata) fit within one page.
  size_t PerfectPages = Clustered.perfectPageCount();
  size_t EligibleRegions = 0;
  for (size_t Region = 0; Region != Pages / 2; ++Region) {
    size_t Failed = 0;
    for (size_t I = 0; I != 2 * PcmLinesPerPage; ++I)
      Failed += Base.isFailed(Region * 2 * PcmLinesPerPage + I);
    if (Failed + 2 <= PcmLinesPerPage)
      ++EligibleRegions;
  }
  EXPECT_EQ(PerfectPages, EligibleRegions);
  // At a 25% rate nearly every region qualifies.
  EXPECT_GT(PerfectPages, Pages / 2 - Pages / 8);

  // Without clustering, uniform 25% failures leave essentially no
  // perfect pages.
  EXPECT_LT(Base.perfectPageCount(), Pages / 64 + 2);
}

TEST(FailureMapTest, WorkingRuns) {
  FailureMap Map(256);
  Map.fail(10);
  Map.fail(11);
  Map.fail(100);
  std::vector<size_t> Runs = Map.workingRunLengths();
  ASSERT_EQ(Runs.size(), 3u);
  EXPECT_EQ(Runs[0], 10u);
  EXPECT_EQ(Runs[1], 88u);
  EXPECT_EQ(Runs[2], 155u);
  EXPECT_NEAR(Map.meanWorkingRun(), (10.0 + 88.0 + 155.0) / 3.0, 1e-9);
}

TEST(FailureMapTest, ClusteringLengthensRuns) {
  Rng Rand(31);
  FailureMap Base =
      FailureMap::uniform(512 * PcmLinesPerPage, 0.10, Rand);
  ClusterOptions Opts;
  Opts.RegionPages = 2;
  FailureMap Clustered = Base.pushClustered(Opts);
  // Clustering is the antidote to fragmentation: mean contiguous working
  // run must grow by a large factor.
  EXPECT_GT(Clustered.meanWorkingRun(), 4.0 * Base.meanWorkingRun());
}

//===----------------------------------------------------------------------===//
// Property sweeps
//===----------------------------------------------------------------------===//

class FailureMapRateTest : public ::testing::TestWithParam<double> {};

TEST_P(FailureMapRateTest, PushClusteringPreservesWearFailures) {
  double Rate = GetParam();
  Rng Rand(101);
  FailureMap Base =
      FailureMap::uniform(128 * PcmLinesPerPage, Rate, Rand);
  ClusterOptions Opts;
  Opts.RegionPages = 2;
  Opts.ChargeMetadata = false;
  FailureMap Clustered = Base.pushClustered(Opts);
  // Pure clustering permutes failures within regions: totals per region
  // are preserved exactly.
  size_t LinesPerRegion = 2 * PcmLinesPerPage;
  for (size_t Region = 0; Region != 64; ++Region) {
    size_t BaseCount = 0, ClusteredCount = 0;
    for (size_t I = 0; I != LinesPerRegion; ++I) {
      BaseCount += Base.isFailed(Region * LinesPerRegion + I);
      ClusteredCount += Clustered.isFailed(Region * LinesPerRegion + I);
    }
    EXPECT_EQ(BaseCount, ClusteredCount) << "region " << Region;
  }
}

TEST_P(FailureMapRateTest, OnePageClusteringKeepsPageCounts) {
  double Rate = GetParam();
  Rng Rand(77);
  FailureMap Base =
      FailureMap::uniform(128 * PcmLinesPerPage, Rate, Rand);
  ClusterOptions Opts;
  Opts.RegionPages = 1;
  Opts.ChargeMetadata = false;
  FailureMap Clustered = Base.pushClustered(Opts);
  for (PageIndex Page = 0; Page != 128; ++Page)
    EXPECT_EQ(Base.failedLinesInPage(Page),
              Clustered.failedLinesInPage(Page));
}

INSTANTIATE_TEST_SUITE_P(Rates, FailureMapRateTest,
                         ::testing::Values(0.0, 0.05, 0.10, 0.25, 0.50,
                                           0.75));
