//===- tests/SwapManagerTest.cpp - Swap placement policy tests ------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "os/SwapManager.h"

#include <gtest/gtest.h>

#include <vector>

using namespace wearmem;

TEST(SwapManagerTest, PerfectOnlyTakesFirstPerfectPage) {
  SwapManager M(SwapPolicy::PerfectOnly);
  std::vector<uint64_t> Pool = {0x3, 0x0, 0x0};
  auto P = M.place(/*SourceWord=*/0xFF, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
  EXPECT_TRUE(P->UsedPerfectPage);
  EXPECT_EQ(M.stats().PerfectFallbacks, 1u);
}

TEST(SwapManagerTest, PerfectOnlyIgnoresCompatibleImperfectPages) {
  SwapManager M(SwapPolicy::PerfectOnly);
  // 0x1 is a strict subset of the source, but the policy must not use it.
  std::vector<uint64_t> Pool = {0x1, 0x3};
  auto P = M.place(0xFF, Pool);
  EXPECT_FALSE(P.has_value());
  EXPECT_EQ(M.stats().Failures, 1u);
}

TEST(SwapManagerTest, SubsetMatchRequiresDestinationSubset) {
  SwapManager M(SwapPolicy::SubsetMatch);
  // Source fails lines {0,1,4}. 0x12 = {1,4} is a subset; 0x22 = {1,5}
  // fails line 5 where the source has live data, so it is inadmissible.
  std::vector<uint64_t> Pool = {0x22, 0x12};
  auto P = M.place(/*SourceWord=*/0x13, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
  EXPECT_FALSE(P->UsedPerfectPage);
  EXPECT_EQ(M.stats().SubsetMatches, 1u);
}

TEST(SwapManagerTest, SubsetMatchConservesBetterPages) {
  SwapManager M(SwapPolicy::SubsetMatch);
  // Both are subsets of the source; the one with MORE failures wins so
  // that cleaner pages stay available for pickier future requests.
  std::vector<uint64_t> Pool = {0x1, 0x7, 0x3};
  auto P = M.place(/*SourceWord=*/0xF, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
}

TEST(SwapManagerTest, SubsetMatchFallsBackToPerfect) {
  SwapManager M(SwapPolicy::SubsetMatch);
  // No imperfect page is a subset of the source (line 7 vs line 0), so
  // the perfect page absorbs the request.
  std::vector<uint64_t> Pool = {0x80, 0x0};
  auto P = M.place(/*SourceWord=*/0x1, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
  EXPECT_TRUE(P->UsedPerfectPage);
  EXPECT_EQ(M.stats().SubsetMatches, 0u);
  EXPECT_EQ(M.stats().PerfectFallbacks, 1u);
}

TEST(SwapManagerTest, ClusteredCountMatchesOnCountNotPosition) {
  SwapManager M(SwapPolicy::ClusteredCount);
  // Source has 2 failed lines. 0xC0 also has 2 - different positions,
  // but clustering makes equal-count pages interchangeable. 0x7 has 3
  // and is inadmissible.
  std::vector<uint64_t> Pool = {0x7, 0xC0};
  auto P = M.place(/*SourceWord=*/0x3, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
  EXPECT_FALSE(P->UsedPerfectPage);
  EXPECT_EQ(M.stats().ClusteredMatches, 1u);
}

TEST(SwapManagerTest, ClusteredCountPrefersFullestAdmissibleDestination) {
  SwapManager M(SwapPolicy::ClusteredCount);
  // All of these have <= 3 failures; the 3-failure page wins, saving the
  // 1-failure page for a future 1-failure source it alone could serve.
  std::vector<uint64_t> Pool = {0x1, 0x15, 0x3};
  auto P = M.place(/*SourceWord=*/0x7, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
}

TEST(SwapManagerTest, ClusteredCountNeverPlacesOntoWorsePage) {
  SwapManager M(SwapPolicy::ClusteredCount);
  // Every imperfect page has more failures than the source and there is
  // no perfect page: the request must fail rather than lose lines.
  std::vector<uint64_t> Pool = {0x1F, 0xFF};
  auto P = M.place(/*SourceWord=*/0x3, Pool);
  EXPECT_FALSE(P.has_value());
  EXPECT_EQ(M.stats().Failures, 1u);
}

TEST(SwapManagerTest, ClusteredCountFallsBackToPerfect) {
  SwapManager M(SwapPolicy::ClusteredCount);
  std::vector<uint64_t> Pool = {0xFF, 0x0};
  auto P = M.place(/*SourceWord=*/0x1, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
  EXPECT_TRUE(P->UsedPerfectPage);
}

TEST(SwapManagerTest, PerfectSourceStillPlacesSomewhere) {
  SwapManager M(SwapPolicy::ClusteredCount);
  // A perfect source (no failed lines) admits no imperfect destination
  // under either policy - count 0 is the floor - so it needs a perfect
  // page.
  std::vector<uint64_t> Pool = {0x1, 0x0};
  auto P = M.place(/*SourceWord=*/0x0, Pool);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->PoolIndex, 1u);
  EXPECT_TRUE(P->UsedPerfectPage);
}

TEST(SwapManagerTest, StatsAccumulateAcrossRequests) {
  SwapManager M(SwapPolicy::ClusteredCount);
  std::vector<uint64_t> Pool = {0x3, 0x0};
  M.place(0x7, Pool);  // clustered match (0x3)
  M.place(0x1, Pool);  // perfect fallback (0x3 has too many failures)
  M.place(0x0, std::vector<uint64_t>{0x1}); // failure
  const SwapStats &S = M.stats();
  EXPECT_EQ(S.Requests, 3u);
  EXPECT_EQ(S.ClusteredMatches, 1u);
  EXPECT_EQ(S.PerfectFallbacks, 1u);
  EXPECT_EQ(S.Failures, 1u);
}
