//===- tests/FuzzTest.cpp - Randomized differential stress tests ----------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Two randomized differential testers:
//
//  * PcmDeviceFuzz drives a device with random line reads and writes
//    while mirroring every durable write into a shadow array; after any
//    number of wear-outs, clusterings, and OS drains, every readable
//    line must match the shadow.
//
//  * HeapFuzz drives a heap with random allocations, pointer updates,
//    root churn, collections, and dynamic failures while mirroring the
//    object graph into a shadow structure keyed by stable object ids;
//    after every collection the heap graph must match the shadow exactly.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "os/OsKernel.h"
#include "pcm/PcmDevice.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

using namespace wearmem;

//===----------------------------------------------------------------------===//
// Device vs shadow array
//===----------------------------------------------------------------------===//

struct DeviceFuzzParam {
  bool Clustering;
  unsigned RegionPages;
  uint64_t Seed;
};

class PcmDeviceFuzz : public ::testing::TestWithParam<DeviceFuzzParam> {};

TEST_P(PcmDeviceFuzz, MatchesShadowThroughWearout) {
  DeviceFuzzParam Param = GetParam();
  PcmDeviceConfig Config;
  Config.NumPages = 8;
  Config.MeanLineLifetime = 30; // Failures happen often.
  Config.LifetimeVariation = 0.3;
  Config.FailureBufferCapacity = 16;
  Config.ClusteringEnabled = Param.Clustering;
  Config.RegionPages = Param.RegionPages;
  Config.Seed = Param.Seed;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);

  // The up-call records retired lines; the shadow stops tracking them.
  std::vector<bool> Dead(Device.numLines(), false);
  Kernel.registerHandler(
      [&Dead](const std::vector<FailureRecord> &Pending) {
        for (const FailureRecord &Record : Pending)
          Dead[lineOfAddr(Record.LineAddr)] = true;
      });

  std::vector<std::array<uint8_t, PcmLineSize>> Shadow(Device.numLines());
  Rng Rand(Param.Seed * 77 + 5);
  uint64_t DurableWrites = 0;
  for (int Op = 0; Op != 30000; ++Op) {
    LineIndex Line = Rand.nextBelow(Device.numLines());
    // Consult the *current* failure map like a correct OS would. The
    // kernel handler above may retire more lines during the write.
    if (Device.softwareFailureMap().isFailed(Line))
      continue;
    if (Rand.nextBool(0.6)) {
      std::array<uint8_t, PcmLineSize> Data;
      for (auto &Byte : Data)
        Byte = static_cast<uint8_t>(Rand.next());
      WriteResult Result = Device.writeLine(Line, Data.data());
      ASSERT_NE(Result, WriteResult::DeadLine);
      if (Result == WriteResult::Ok) {
        ++DurableWrites;
        // Durable even if the line failed mid-write: either it was
        // remapped (clustering) or the kernel retired it and the data
        // lives nowhere - in that case the line reads as dead below.
        Shadow[Line] = Data;
      }
    } else {
      uint8_t Out[PcmLineSize];
      Device.readLine(Line, Out);
      // A line the kernel retired after its last write is unreadable;
      // everything else must match the shadow.
      if (!Device.softwareFailureMap().isFailed(Line))
        ASSERT_EQ(std::memcmp(Out, Shadow[Line].data(), PcmLineSize), 0)
            << "line " << Line << " after op " << Op;
    }
  }
  EXPECT_GT(DurableWrites, 10000u);
  // Wear really happened.
  EXPECT_GT(Device.stats().WearFailures, 20u);

  // Full final audit of all surviving lines.
  for (LineIndex Line = 0; Line != Device.numLines(); ++Line) {
    if (Device.softwareFailureMap().isFailed(Line))
      continue;
    uint8_t Out[PcmLineSize];
    Device.readLine(Line, Out);
    ASSERT_EQ(std::memcmp(Out, Shadow[Line].data(), PcmLineSize), 0)
        << "final audit, line " << Line;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PcmDeviceFuzz,
    ::testing::Values(DeviceFuzzParam{false, 1, 11},
                      DeviceFuzzParam{false, 1, 12},
                      DeviceFuzzParam{true, 1, 13},
                      DeviceFuzzParam{true, 2, 14},
                      DeviceFuzzParam{true, 2, 15},
                      DeviceFuzzParam{true, 4, 16}));

//===----------------------------------------------------------------------===//
// Heap vs shadow graph
//===----------------------------------------------------------------------===//

struct HeapFuzzParam {
  CollectorKind Collector;
  double Rate;
  unsigned ClusterPages;
  uint64_t Seed;
};

class HeapFuzz : public ::testing::TestWithParam<HeapFuzzParam> {};

TEST_P(HeapFuzz, GraphMatchesShadow) {
  HeapFuzzParam Param = GetParam();
  RuntimeConfig Config;
  Config.Collector = Param.Collector;
  Config.HeapBytes = 6 * MiB;
  Config.FailureRate = Param.Rate;
  Config.ClusteringRegionPages = Param.ClusterPages;
  Config.Seed = Param.Seed;
  Runtime Rt(Config);
  Rng Rand(Param.Seed ^ 0xF00D);

  // Shadow model: node id -> (payload id, children ids). Ids are stored
  // in the heap objects' payloads, so the graph can be compared after
  // arbitrary moves.
  struct ShadowNode {
    uint64_t Id;
    std::vector<uint64_t> Children;
  };
  constexpr unsigned NumRoots = 24;
  constexpr unsigned MaxRefs = 3;
  std::vector<Handle> Roots;
  std::vector<ShadowNode> ShadowRoots(NumRoots);
  uint64_t NextId = 1;

  auto makeNode = [&](ShadowNode &Shadow) -> ObjRef {
    ObjRef Obj = Rt.allocate(
        16, MaxRefs, /*Pinned=*/Rand.nextBool(0.01));
    if (!Obj)
      return nullptr;
    Shadow.Id = NextId;
    Shadow.Children.assign(MaxRefs, 0);
    *reinterpret_cast<uint64_t *>(objectPayload(Obj)) = NextId++;
    return Obj;
  };

  for (unsigned I = 0; I != NumRoots; ++I) {
    ObjRef Obj = makeNode(ShadowRoots[I]);
    ASSERT_NE(Obj, nullptr);
    Roots.push_back(Handle(Rt, Obj));
  }

  auto verify = [&]() {
    for (unsigned I = 0; I != NumRoots; ++I) {
      ObjRef Obj = Roots[I].get();
      ASSERT_EQ(*reinterpret_cast<uint64_t *>(objectPayload(Obj)),
                ShadowRoots[I].Id);
      for (unsigned Slot = 0; Slot != MaxRefs; ++Slot) {
        ObjRef Child = Runtime::readRef(Obj, Slot);
        uint64_t ChildId =
            Child ? *reinterpret_cast<uint64_t *>(objectPayload(Child))
                  : 0;
        ASSERT_EQ(ChildId, ShadowRoots[I].Children[Slot])
            << "root " << I << " slot " << Slot;
      }
    }
  };

  Rng FailureRand(Param.Seed + 1);
  for (int Op = 0; Op != 4000; ++Op) {
    unsigned RootIdx = static_cast<unsigned>(Rand.nextBelow(NumRoots));
    double Dice = Rand.nextDouble();
    if (Dice < 0.55) {
      // Attach a fresh child (old one, if any, becomes garbage since the
      // fuzz graph is a forest of depth 1).
      ShadowNode Child;
      ObjRef ChildObj = makeNode(Child);
      ASSERT_NE(ChildObj, nullptr);
      unsigned Slot = static_cast<unsigned>(Rand.nextBelow(MaxRefs));
      Rt.writeRef(Roots[RootIdx].get(), Slot, ChildObj);
      ShadowRoots[RootIdx].Children[Slot] = Child.Id;
    } else if (Dice < 0.75) {
      // Clear a slot.
      unsigned Slot = static_cast<unsigned>(Rand.nextBelow(MaxRefs));
      Rt.writeRef(Roots[RootIdx].get(), Slot, nullptr);
      ShadowRoots[RootIdx].Children[Slot] = 0;
    } else if (Dice < 0.9) {
      // Garbage pressure.
      for (int I = 0; I != 100; ++I)
        ASSERT_NE(Rt.allocate(static_cast<uint32_t>(
                                  24 + Rand.nextBelow(400)),
                              1),
                  nullptr);
    } else if (Dice < 0.97) {
      Rt.collect(Rand.nextBool(0.5));
      verify();
    } else if (isImmix(Param.Collector)) {
      // A line dies under the application's feet.
      Rt.injectRandomDynamicFailure(FailureRand);
      verify();
    }
  }
  Rt.collect(true);
  verify();
  Rt.heap().verifyIntegrity();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HeapFuzz,
    ::testing::Values(
        HeapFuzzParam{CollectorKind::StickyImmix, 0.0, 0, 1},
        HeapFuzzParam{CollectorKind::StickyImmix, 0.25, 2, 2},
        HeapFuzzParam{CollectorKind::StickyImmix, 0.50, 2, 3},
        HeapFuzzParam{CollectorKind::StickyImmix, 0.10, 0, 4},
        HeapFuzzParam{CollectorKind::Immix, 0.25, 2, 5},
        HeapFuzzParam{CollectorKind::MarkSweep, 0.0, 0, 6},
        HeapFuzzParam{CollectorKind::StickyMarkSweep, 0.0, 0, 7}),
    [](const ::testing::TestParamInfo<HeapFuzzParam> &Info) {
      char Buf[64];
      const char *Name =
          Info.param.Collector == CollectorKind::StickyImmix  ? "SIX"
          : Info.param.Collector == CollectorKind::Immix      ? "IX"
          : Info.param.Collector == CollectorKind::MarkSweep  ? "MS"
                                                              : "SMS";
      std::snprintf(Buf, sizeof(Buf), "%s_f%02d_cl%u_s%llu", Name,
                    static_cast<int>(Info.param.Rate * 100),
                    Info.param.ClusterPages,
                    static_cast<unsigned long long>(Info.param.Seed));
      return std::string(Buf);
    });

//===----------------------------------------------------------------------===//
// Incremental SATB marking vs stop-the-world
//===----------------------------------------------------------------------===//
//
// Differential fuzz for the incremental mark cycle: a seeded schedule of
// reference-swap storms, root rewrites, and dynamic line failures runs
// once interleaved with budgeted mark increments, once with the cycle
// drained by the dedicated marker thread (step boundaries become flush
// handshakes, so the racing marker sees sealed SATB segments at fuzzed
// points), and once as plain mutation closed by a stop-the-world full
// collection. The swaps permute satellite objects without dropping any
// (each transiently survives only in the SATB deletion log), so all legs
// must converge to bit-identical physical heaps; failures landing
// mid-cycle park until the close in the marking legs and are injected at
// the matching post-collection point in the stop-the-world leg.

#include "gc/HeapAuditor.h"

namespace {

enum class SatbMode { Stw, Interleaved, Concurrent };

struct SatbOp {
  enum Kind : uint8_t { Swap, RootStore, Fail, StepBoundary } K;
  unsigned A, B, C, D;
};

/// One leg of the differential run. The schedule is precomputed so all
/// legs perform byte-identical mutation; only the marking mode differs.
uint64_t runSatbLeg(SatbMode Mode, unsigned GcThreads, uint64_t Seed,
                    const std::vector<SatbOp> &Schedule) {
  HeapConfig Cfg;
  Cfg.Collector = CollectorKind::StickyImmix;
  Cfg.BudgetPages = (24 * MiB) / PcmPageSize;
  Cfg.GcThreads = GcThreads;
  Cfg.Failures.Rate = 0.05;
  Cfg.Failures.Seed = Seed;
  Cfg.IncrementalMark = Mode == SatbMode::Interleaved;
  Cfg.ConcurrentMark = Mode == SatbMode::Concurrent;
  Cfg.MarkBudget = 128;
  Heap Hp(Cfg);
  const bool Marking = Mode != SatbMode::Stw;

  constexpr unsigned NumLists = 4;
  constexpr unsigned ListLen = 1200;
  constexpr unsigned NumVictims = 6;
  std::vector<unsigned> Heads;
  for (unsigned L = 0; L != NumLists; ++L) {
    unsigned HeadRoot = Hp.createRoot(nullptr);
    for (unsigned I = 0; I != ListLen; ++I) {
      ObjRef Node = Hp.allocate(40, 2);
      if (!Node)
        break;
      *reinterpret_cast<uint64_t *>(objectPayload(Node)) =
          (uint64_t(L) << 32) | I;
      if (I % 3 == 0) {
        if (ObjRef Sat = Hp.allocate(24, 0)) {
          *reinterpret_cast<uint64_t *>(objectPayload(Sat)) =
              0xFA7ull << 40 | (uint64_t(L) << 20) | I;
          Hp.writeRef(Node, 1, Sat);
        }
      }
      if (ObjRef Head = Hp.root(HeadRoot))
        Hp.writeRef(Node, 0, Head);
      Hp.setRoot(HeadRoot, Node);
    }
    Heads.push_back(HeadRoot);
  }
  // Pinned fail targets, one per simulated mutator lane: they never
  // move, so the same addresses fail in both legs.
  std::vector<ObjRef> Victims;
  for (unsigned V = 0; V != NumVictims; ++V) {
    ObjRef Obj = Hp.allocate(64, 0, /*Pinned=*/true);
    EXPECT_NE(Obj, nullptr);
    Hp.createRoot(Obj);
    Victims.push_back(Obj);
  }
  EXPECT_FALSE(Hp.outOfMemory());

  auto walkList = [&](unsigned L, unsigned Depth) {
    ObjRef Node = Hp.root(Heads[L]);
    for (unsigned I = 0; I != Depth && Node; ++I) {
      ObjRef Next = Heap::readRef(Node, 0);
      if (!Next)
        break;
      Node = Next;
    }
    return Node;
  };

  if (Marking) {
    EXPECT_TRUE(Hp.beginIncrementalMarkCycle());
  }
  std::vector<ObjRef> Parked; // STW leg: failures held to the close point.
  for (const SatbOp &Op : Schedule) {
    switch (Op.K) {
    case SatbOp::Swap: {
      ObjRef X = walkList(Op.A % NumLists, Op.C);
      ObjRef Y = walkList(Op.B % NumLists, Op.D);
      if (!X || !Y || X == Y)
        break;
      ObjRef Tx = Heap::readRef(X, 1);
      ObjRef Ty = Heap::readRef(Y, 1);
      Hp.writeRef(X, 1, Ty);
      Hp.writeRef(Y, 1, Tx);
      break;
    }
    case SatbOp::RootStore:
      Hp.setRoot(Heads[Op.A % NumLists], Hp.root(Heads[Op.A % NumLists]));
      break;
    case SatbOp::Fail:
      // Mid-cycle line death. Marking legs: parks until the drain
      // after the close. Stop-the-world: recorded and injected at the
      // equivalent point (right after the closing collection).
      if (Marking)
        Hp.injectDynamicFailureBatch({Victims[Op.A % NumVictims]});
      else
        Parked.push_back(Victims[Op.A % NumVictims]);
      break;
    case SatbOp::StepBoundary:
      // The same fuzzed pacing point means a budgeted step when the
      // mutator drains and a flush handshake when the marker does.
      if (Mode == SatbMode::Interleaved)
        Hp.incrementalMarkStep();
      else if (Mode == SatbMode::Concurrent)
        Hp.satbFlushHandshake();
      break;
    }
  }
  if (Marking) {
    Hp.finishIncrementalMarkCycle();
  } else {
    Hp.collect(CollectionKind::Full);
    for (ObjRef V : Parked)
      Hp.injectDynamicFailureBatch({V});
  }
  Hp.collect(CollectionKind::Full); // Settle.
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
  return Auditor.digest(/*HashPayload=*/true);
}

} // namespace

class SatbFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatbFuzz, IncrementalMatchesStopTheWorld) {
  uint64_t Seed = GetParam();
  Rng Rand(Seed * 131 + 17);
  // Precompute the schedule: ~30 batches of swap/root-store storms, a
  // step boundary between batches (occasionally several, occasionally
  // none - increments must tolerate both), and a handful of mid-cycle
  // failures on distinct victims.
  std::vector<SatbOp> Schedule;
  std::vector<unsigned> FreshVictims{0, 1, 2, 3, 4, 5};
  for (unsigned Batch = 0; Batch != 30; ++Batch) {
    unsigned Ops = 20 + static_cast<unsigned>(Rand.nextBelow(30));
    for (unsigned I = 0; I != Ops; ++I) {
      if (Rand.nextBool(0.12)) {
        Schedule.push_back(
            {SatbOp::RootStore,
             static_cast<unsigned>(Rand.nextBelow(4)), 0, 0, 0});
      } else {
        Schedule.push_back(
            {SatbOp::Swap, static_cast<unsigned>(Rand.nextBelow(4)),
             static_cast<unsigned>(Rand.nextBelow(4)),
             static_cast<unsigned>(Rand.nextBelow(41)),
             static_cast<unsigned>(Rand.nextBelow(41))});
      }
    }
    if (!FreshVictims.empty() && Rand.nextBool(0.15)) {
      unsigned Pick =
          static_cast<unsigned>(Rand.nextBelow(FreshVictims.size()));
      Schedule.push_back({SatbOp::Fail, FreshVictims[Pick], 0, 0, 0});
      FreshVictims.erase(FreshVictims.begin() + Pick);
    }
    unsigned Steps = static_cast<unsigned>(Rand.nextBelow(3));
    for (unsigned S = 0; S != Steps; ++S)
      Schedule.push_back({SatbOp::StepBoundary, 0, 0, 0, 0});
  }

  uint64_t Stw = runSatbLeg(SatbMode::Stw, 1, Seed, Schedule);
  uint64_t Inc1 = runSatbLeg(SatbMode::Interleaved, 1, Seed, Schedule);
  uint64_t Inc4 = runSatbLeg(SatbMode::Interleaved, 4, Seed, Schedule);
  EXPECT_EQ(Inc1, Stw) << "seed " << Seed;
  EXPECT_EQ(Inc4, Stw) << "seed " << Seed;
  // The marker-thread pacing of the same schedule: the free-running
  // drain must be invisible in the final heap.
  uint64_t Conc1 = runSatbLeg(SatbMode::Concurrent, 1, Seed, Schedule);
  uint64_t Conc4 = runSatbLeg(SatbMode::Concurrent, 4, Seed, Schedule);
  EXPECT_EQ(Conc1, Stw) << "seed " << Seed;
  EXPECT_EQ(Conc4, Stw) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatbFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));
