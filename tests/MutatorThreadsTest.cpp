//===- tests/MutatorThreadsTest.cpp - Multi-threaded mutator tests --------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The multi-threaded mutator engine under failure storms: the safepoint
// handshake (park, blocked regions, the hang watchdog), per-lane TLAB
// ownership and its auditor invariants, thread-targeted interrupt
// routing with the Routed == Delivered + Orphaned ledger, and the
// lane-schedule determinism contract (bit-identical digests for any
// mutator thread count at a fixed lane count).
//
//===----------------------------------------------------------------------===//

#include "gc/HeapAuditor.h"
#include "gc/Safepoint.h"
#include "inject/FaultCampaign.h"
#include "os/OsKernel.h"
#include "workload/MutatorPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace wearmem;

namespace {

RuntimeConfig laneConfig(unsigned Lanes) {
  RuntimeConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.HeapBytes = (8 * MiB) * Lanes;
  return Config;
}

/// First PCM-line-sized address of \p Line within \p B (the campaign's
/// targeting granularity).
uint8_t *lineAddr(Block &B, unsigned Line) {
  return B.base() + Line * B.lineSize();
}

} // namespace

//===----------------------------------------------------------------------===//
// Safepoint handshake
//===----------------------------------------------------------------------===//

TEST(SafepointTest, HandshakeParksEveryRunningPeer) {
  SafepointCoordinator SP;
  constexpr unsigned Peers = 3;
  std::atomic<bool> Done{false};
  std::atomic<unsigned> Ready{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != Peers; ++I)
    Threads.emplace_back([&, I] {
      SP.registerThread(static_cast<int>(I));
      ++Ready;
      while (!Done.load())
        SP.pollAndPark();
      SP.unregisterThread();
    });
  while (Ready.load() != Peers)
    std::this_thread::yield();

  // The caller is not registered; every peer must ack by parking.
  EXPECT_EQ(SP.stopTheWorld(), Peers);
  EXPECT_EQ(SP.stats().Stops, 1u);
  EXPECT_EQ(SP.stats().Parks, Peers);
  std::string Dump = SP.threadDump();
  EXPECT_NE(Dump.find("state=parked"), std::string::npos);

  Done.store(true);
  SP.resumeTheWorld();
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(SP.registeredThreads(), 0u);
}

TEST(SafepointTest, BlockedPeerCountsAsStoppedWithoutAnAck) {
  SafepointCoordinator SP;
  std::atomic<int> Phase{0}; // 0 starting, 1 blocked, 2 may leave.
  std::thread Peer([&] {
    SP.registerThread(0);
    // Simulates a thread stuck draining a backpressure stall: it cannot
    // poll, but the handshake must not wait for it.
    SP.enterBlockedRegion();
    Phase.store(1);
    while (Phase.load() != 2)
      std::this_thread::yield();
    // A handshake is in progress: leaving the blocked region must park
    // until the world resumes, not let the thread touch the heap.
    SP.leaveBlockedRegion();
    SP.unregisterThread();
  });
  while (Phase.load() != 1)
    std::this_thread::yield();

  EXPECT_EQ(SP.stopTheWorld(), 1u);
  EXPECT_EQ(SP.stats().BlockedAcks, 1u);
  EXPECT_EQ(SP.stats().Parks, 0u);

  // Release the peer mid-handshake; it must end up parked, not running.
  Phase.store(2);
  while (SP.statsSnapshot().Parks == 0)
    std::this_thread::yield();
  SP.resumeTheWorld();
  Peer.join();
  EXPECT_EQ(SP.stats().WatchdogFired, 0u);
}

TEST(SafepointTest, WatchdogFailStopsWithAThreadDump) {
  SafepointCoordinator SP;
  SP.setWatchdogBudget(3); // Three 100 us rounds, then fail-stop.
  std::string CapturedDump;
  unsigned HandlerCalls = 0;
  SP.setFailStopHandler([&](const std::string &Dump) {
    ++HandlerCalls;
    CapturedDump = Dump;
  });

  std::atomic<bool> Release{false};
  std::atomic<bool> Registered{false};
  std::thread Stuck([&] {
    SP.registerThread(7);
    Registered.store(true);
    // Never polls: a hung mutator from the coordinator's point of view.
    while (!Release.load())
      std::this_thread::yield();
    SP.unregisterThread();
  });
  while (!Registered.load())
    std::this_thread::yield();

  // The handshake can never complete; the watchdog must abandon it and
  // hand the handler a dump naming the unresponsive thread.
  EXPECT_EQ(SP.stopTheWorld(), 0u);
  EXPECT_EQ(HandlerCalls, 1u);
  EXPECT_EQ(SP.stats().WatchdogFired, 1u);
  EXPECT_NE(CapturedDump.find("lane=7"), std::string::npos);
  EXPECT_NE(CapturedDump.find("state=running"), std::string::npos);

  // The handler returned (tests override the default abort): the stop
  // request was withdrawn, so the world is free to make progress.
  Release.store(true);
  Stuck.join();
  EXPECT_EQ(SP.registeredThreads(), 0u);
}

TEST(SafepointTest, BackpressureStallRunsInsideBlockedRegionHooks) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.FailureBufferCapacity = 4;
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);

  // Latch two failures before any kernel exists, so the first write
  // stalls on the near-full buffer and enters the drain-retry loop.
  uint8_t Data[PcmLineSize] = {};
  for (LineIndex Line : {0u, 1u}) {
    Device.injectImminentFailure(Line);
    EXPECT_EQ(Device.writeLine(Line, Data), WriteResult::Ok);
  }
  ASSERT_TRUE(Device.failureBuffer().nearFull());

  OsKernel Kernel(Device);
  Kernel.registerHandler([](const std::vector<FailureRecord> &) {});
  unsigned Entered = 0, Left = 0;
  Kernel.setBlockedRegionHooks([&] { ++Entered; }, [&] { ++Left; });

  EXPECT_EQ(Kernel.writeWithBackpressure(addrOfLine(3), Data, PcmLineSize),
            WriteResult::Ok);
  EXPECT_EQ(Entered, 1u);
  EXPECT_EQ(Left, 1u);

  // A write that lands first try never enters the blocked region.
  EXPECT_EQ(Kernel.writeWithBackpressure(addrOfLine(2), Data, PcmLineSize),
            WriteResult::Ok);
  EXPECT_EQ(Entered, 1u);
  EXPECT_EQ(Left, 1u);
}

TEST(SafepointTest, CrossThreadInterruptsSerializeOnTheHandlerMutex) {
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);
  OsKernel Kernel(Device);

  std::atomic<unsigned> Concurrent{0};
  std::atomic<unsigned> MaxConcurrent{0};
  Kernel.registerHandler([&](const std::vector<FailureRecord> &) {
    unsigned Now = ++Concurrent;
    unsigned Prev = MaxConcurrent.load();
    while (Now > Prev && !MaxConcurrent.compare_exchange_weak(Prev, Now))
      ;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    --Concurrent;
  });

  uint8_t Data[PcmLineSize];
  std::memset(Data, 0x5A, sizeof(Data));
  Device.injectImminentFailure(5);
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Ok);

  // Two threads race handleFailures for the same pending batch. The
  // handler mutex must serialize them - the up-call never overlaps
  // itself, and nothing is lost or double-resolved.
  std::thread A([&] { Kernel.handleFailures(); });
  std::thread B([&] { Kernel.handleFailures(); });
  A.join();
  B.join();
  EXPECT_EQ(MaxConcurrent.load(), 1u);
  EXPECT_TRUE(Device.pendingFailures().empty());
  EXPECT_EQ(Kernel.stats().ReentrantInterrupts, 0u);
}

//===----------------------------------------------------------------------===//
// Lane-targeted interrupt routing
//===----------------------------------------------------------------------===//

TEST(InterruptRoutingTest, ForeignLaneInterruptsParkInTheMailbox) {
  Runtime Rt(laneConfig(2));
  Heap &H = Rt.heap();
  Rt.setMutatorLanes(2);

  // Give both lanes a live TLAB.
  H.setActiveLane(0);
  ASSERT_NE(Rt.allocate(64, 0), nullptr);
  H.setActiveLane(1);
  ASSERT_NE(Rt.allocate(64, 0), nullptr);
  Block *B1 = H.mutatorTlabBlock(1);
  ASSERT_NE(B1, nullptr);
  EXPECT_EQ(B1->ownerLane(), 1);

  // Lane 0 is running when a failure lands in lane 1's TLAB: it must
  // park in lane 1's mailbox, untouched until that lane's next turn.
  H.setActiveLane(0);
  std::vector<uint8_t *> Addrs{lineAddr(*B1, 3)};
  H.routeDynamicFailureBatch(Addrs);
  EXPECT_EQ(Rt.stats().InterruptsRouted, 1u);
  EXPECT_EQ(Rt.stats().InterruptsDelivered, 0u);
  EXPECT_EQ(H.laneMailboxDepth(1), 1u);

  // The owning lane's turn delivers it; the ledger balances.
  H.setActiveLane(1);
  EXPECT_EQ(H.drainLaneMailbox(1), 1u);
  EXPECT_EQ(H.laneMailboxDepth(1), 0u);
  EXPECT_EQ(Rt.stats().InterruptsDelivered, 1u);
  EXPECT_EQ(Rt.stats().InterruptsRouted,
            Rt.stats().InterruptsDelivered + Rt.stats().InterruptsOrphaned);
}

TEST(InterruptRoutingTest, ActiveLaneInterruptsInjectImmediately) {
  Runtime Rt(laneConfig(2));
  Heap &H = Rt.heap();
  Rt.setMutatorLanes(2);

  H.setActiveLane(0);
  ASSERT_NE(Rt.allocate(64, 0), nullptr);
  Block *B0 = H.mutatorTlabBlock(0);
  ASSERT_NE(B0, nullptr);

  std::vector<uint8_t *> Addrs{lineAddr(*B0, 2)};
  H.routeDynamicFailureBatch(Addrs);
  EXPECT_EQ(Rt.stats().InterruptsRouted, 1u);
  EXPECT_EQ(Rt.stats().InterruptsDelivered, 1u);
  EXPECT_EQ(H.laneMailboxDepth(0), 0u);
  EXPECT_EQ(H.laneMailboxDepth(1), 0u);
}

TEST(InterruptRoutingTest, UnownedBlockInterruptsOrphanToTheDeferredQueue) {
  Runtime Rt(laneConfig(2));
  Heap &H = Rt.heap();
  Rt.setMutatorLanes(2);

  // Fill lane 0's first TLAB until the allocator moves on; the filled
  // block's ownership lapses, so a failure there has no thread to go to.
  H.setActiveLane(0);
  ASSERT_NE(Rt.allocate(64, 0), nullptr);
  Block *First = H.mutatorTlabBlock(0);
  ASSERT_NE(First, nullptr);
  while (H.mutatorTlabBlock(0) == First)
    ASSERT_NE(Rt.allocate(64, 0), nullptr);
  EXPECT_EQ(First->ownerLane(), -1);

  std::vector<uint8_t *> Addrs{lineAddr(*First, 1)};
  H.routeDynamicFailureBatch(Addrs);
  EXPECT_EQ(Rt.stats().InterruptsRouted, 1u);
  EXPECT_EQ(Rt.stats().InterruptsOrphaned, 1u);
  EXPECT_TRUE(H.pendingFailureRecovery());

  // The next collection's end-of-cycle safepoint drains the orphan into
  // the normal dynamic-failure path: the batch lands (lines fenced,
  // recovery re-flagged), and the following full collection pays the
  // recovery debt.
  Rt.collect(true);
  EXPECT_GE(Rt.stats().FailedLinesDynamic, 1u);
  EXPECT_TRUE(H.pendingFailureRecovery());
  Rt.collect(true);
  EXPECT_FALSE(H.pendingFailureRecovery());
  EXPECT_EQ(Rt.stats().InterruptsRouted,
            Rt.stats().InterruptsDelivered + Rt.stats().InterruptsOrphaned);
}

TEST(InterruptRoutingTest, CampaignParsesThreadTargetsAndHandshakeKillPoint) {
  std::string Error;
  auto Triggers = FaultCampaign::parseSchedule(
      "storm@alloc:1m+256k:lines=8,thread=0", &Error);
  ASSERT_TRUE(Triggers.has_value()) << Error;
  ASSERT_EQ(Triggers->size(), 1u);
  EXPECT_EQ((*Triggers)[0].ThreadTarget, 0); // Lane 0 is a valid target.
  EXPECT_EQ((*Triggers)[0].Lines, 8u);

  Triggers = FaultCampaign::parseSchedule("storm@gc:4:lines=4,thread=3");
  ASSERT_TRUE(Triggers.has_value());
  EXPECT_EQ((*Triggers)[0].ThreadTarget, 3);

  // thread= is a storm-only option.
  EXPECT_FALSE(
      FaultCampaign::parseSchedule("drip@alloc:1m:thread=1", &Error)
          .has_value());
  EXPECT_NE(Error.find("thread"), std::string::npos);

  // The handshake window is an armable kill point.
  Triggers = FaultCampaign::parseSchedule("crash@gc:2:at=handshake", &Error);
  ASSERT_TRUE(Triggers.has_value()) << Error;
  EXPECT_EQ((*Triggers)[0].CrashAt, CrashPoint::SafepointHandshake);
  EXPECT_STREQ(crashPointName(CrashPoint::SafepointHandshake),
               "safepoint-handshake");
}

//===----------------------------------------------------------------------===//
// TLAB auditor invariants
//===----------------------------------------------------------------------===//

TEST(TlabAuditTest, ForeignOwnerTagIsAViolation) {
  Runtime Rt(laneConfig(2));
  Heap &H = Rt.heap();
  Rt.setMutatorLanes(2);
  H.setActiveLane(0);
  ASSERT_NE(Rt.allocate(64, 0), nullptr);
  Block *B0 = H.mutatorTlabBlock(0);
  ASSERT_NE(B0, nullptr);

  HeapAuditor Auditor(H);
  EXPECT_TRUE(Auditor.audit().passed());

  // Tamper: lane 0's TLAB claims to belong to lane 1. The auditor must
  // refuse the heap - thread-targeted fault delivery relies on the tag.
  B0->setOwnerLane(1);
  AuditReport Tampered = Auditor.audit();
  EXPECT_FALSE(Tampered.passed());

  B0->setOwnerLane(0);
  EXPECT_TRUE(Auditor.audit().passed());
}

//===----------------------------------------------------------------------===//
// The mutator pool: schedule determinism and the acceptance storm
//===----------------------------------------------------------------------===//

TEST(MutatorPoolTest, DigestIsBitIdenticalAcrossThreadCounts) {
  constexpr unsigned Lanes = 4;
  uint64_t Digests[3] = {};
  uint64_t GcCounts[3] = {};
  unsigned I = 0;
  for (unsigned Threads : {1u, 2u, 4u}) {
    Runtime Rt(laneConfig(Lanes));
    MutatorPoolOptions Opts;
    Opts.Lanes = Lanes;
    Opts.Threads = Threads;
    Opts.Seed = 99;
    Opts.VolumeScale = 0.25;
    MutatorPool Pool(Rt, *findProfile("luindex"), Opts);
    ASSERT_TRUE(Pool.run());
    Rt.collect(true);
    HeapAuditor Auditor(Rt.heap());
    EXPECT_TRUE(Auditor.audit().passed());
    Digests[I] = Auditor.digest(/*HashPayload=*/true);
    GcCounts[I] = Rt.stats().GcCount;
    ++I;
  }
  // The lane turnstile owns the allocation order: OS thread scheduling
  // must be invisible in the heap it builds.
  EXPECT_EQ(Digests[0], Digests[1]);
  EXPECT_EQ(Digests[0], Digests[2]);
  EXPECT_EQ(GcCounts[0], GcCounts[1]);
  EXPECT_EQ(GcCounts[0], GcCounts[2]);
}

TEST(MutatorPoolTest, TurnHookSeesEveryLaneAndCanAbort) {
  Runtime Rt(laneConfig(2));
  MutatorPoolOptions Opts;
  Opts.Lanes = 2;
  Opts.Threads = 2;
  Opts.VolumeScale = 0.05;
  MutatorPool Pool(Rt, *findProfile("luindex"), Opts);
  std::vector<bool> Seen(2, false);
  Pool.setTurnHook([&](unsigned Lane, uint64_t Turn) {
    Seen[Lane] = true;
    return Turn < 10; // Abort the run on the 11th turn.
  });
  EXPECT_FALSE(Pool.run());
  EXPECT_TRUE(Pool.failed());
  EXPECT_TRUE(Seen[0]);
  EXPECT_TRUE(Seen[1]);
}

TEST(MutatorPoolTest, HandshakeStormSoakHasNoFailStopsAndNoLostInterrupts) {
  // The PR's acceptance soak: 100 iterations, each one an explicit
  // stop-the-world handshake from the active mutator thread plus a
  // thread-targeted storm batch aimed at a rotating lane's TLAB. Zero
  // watchdog fail-stops, zero lost interrupts (ledger-verified), and a
  // clean final audit are required.
  constexpr unsigned Lanes = 4;
  constexpr uint64_t Iterations = 100;
  Runtime Rt(laneConfig(Lanes));
  Heap &H = Rt.heap();

  std::atomic<unsigned> FailStops{0};
  Rt.safepoints().setFailStopHandler(
      [&](const std::string &) { ++FailStops; });

  MutatorPoolOptions Opts;
  Opts.Lanes = Lanes;
  Opts.Threads = 4;
  Opts.Seed = 1234;
  Opts.VolumeScale = 0.5;
  MutatorPool Pool(Rt, *findProfile("luindex"), Opts);

  uint64_t Injected = 0;
  uint64_t Handshakes = 0;
  Pool.setTurnHook([&](unsigned Lane, uint64_t Turn) {
    if (Turn % 512 != 0 || Handshakes >= Iterations)
      return true;
    ++Handshakes;
    // Storm one line of a rotating victim lane's TLAB. Targeting a
    // foreign lane routes through its mailbox; targeting the active
    // lane injects immediately; a lane between TLABs is skipped (the
    // campaign's dry-firing case).
    unsigned Victim = static_cast<unsigned>(Handshakes % Lanes);
    if (Block *B = H.mutatorTlabBlock(Victim)) {
      std::vector<uint8_t *> Addrs{
          lineAddr(*B, static_cast<unsigned>(Handshakes) % 8)};
      H.routeDynamicFailureBatch(Addrs);
      ++Injected;
    }
    // An explicit handshake from the active mutator thread: every peer
    // is waiting on the turnstile inside a blocked region, so the stop
    // must complete without a single watchdog round of help from them.
    (void)Lane;
    Rt.safepoints().stopTheWorld();
    Rt.safepoints().resumeTheWorld();
    return true;
  });

  ASSERT_TRUE(Pool.run());
  EXPECT_EQ(Handshakes, Iterations);
  EXPECT_EQ(FailStops.load(), 0u);
  EXPECT_EQ(Rt.safepoints().stats().WatchdogFired, 0u);

  // Ledger: every routed interrupt was delivered or orphaned; nothing
  // is still parked in a mailbox.
  const HeapStats &S = Rt.stats();
  EXPECT_EQ(S.InterruptsRouted, Injected);
  EXPECT_EQ(S.InterruptsRouted,
            S.InterruptsDelivered + S.InterruptsOrphaned);
  for (unsigned Lane = 0; Lane != Lanes; ++Lane)
    EXPECT_EQ(H.laneMailboxDepth(Lane), 0u);

  if (H.pendingFailureRecovery())
    Rt.collect(true);
  HeapAuditor Auditor(H);
  AuditReport Report = Auditor.audit();
  for (const std::string &V : Report.Violations)
    ADD_FAILURE() << "audit violation: " << V;
  EXPECT_TRUE(Report.passed());
}
