//===- tests/UsageTest.cpp - Tool help/usage contract tests ---------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Executes the real wearmem_run / wearmem_soak binaries (paths injected
// at compile time) and pins their command-line contract:
//
//  - --help exits 0 and its flag table matches the declared flag set
//    exactly, both ways - a flag added to a parser without a help line,
//    or a help line for a flag the parser dropped, fails here;
//  - unknown options and malformed values exit 64 (cli::ExitUsage) with
//    a diagnostic that names the offending flag.
//
//===----------------------------------------------------------------------===//

#include "support/CliArgs.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct ToolResult {
  int ExitCode = -1;
  std::string Output; ///< stdout and stderr interleaved.
};

/// Runs a tool command line through the shell, capturing both streams.
ToolResult runTool(const std::string &CmdLine) {
  ToolResult R;
  FILE *Pipe = popen((CmdLine + " 2>&1").c_str(), "r");
  if (!Pipe)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  return R;
}

/// Every distinct `--flag` token mentioned anywhere in Text.
std::set<std::string> flagsIn(const std::string &Text) {
  std::set<std::string> Flags;
  for (size_t I = 0; (I = Text.find("--", I)) != std::string::npos;) {
    size_t End = I + 2;
    while (End < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-'))
      ++End;
    if (End > I + 2)
      Flags.insert(Text.substr(I, End - I));
    I = End;
  }
  return Flags;
}

/// Asserts the help text's flag vocabulary equals Declared, reporting
/// the drift in both directions.
void expectFlagSetMatches(const std::string &Help,
                          const std::vector<std::string> &Declared) {
  std::set<std::string> InHelp = flagsIn(Help);
  std::set<std::string> Expected(Declared.begin(), Declared.end());
  for (const std::string &F : Expected)
    EXPECT_TRUE(InHelp.count(F)) << "declared flag missing from --help: "
                                 << F;
  for (const std::string &F : InHelp)
    EXPECT_TRUE(Expected.count(F))
        << "--help mentions an undeclared flag: " << F;
}

// The declared flag tables, mirroring the two parsers. A parser change
// that skips the matching usage() edit shows up as a set difference
// above; keep all three in sync.
const std::vector<std::string> RunFlags = {
    "--list",          "--profile",
    "--collector",     "--adversary",
    "--heap-factor",   "--heap-mb",
    "--failure-rate",  "--cluster",
    "--line",          "--no-compensate",
    "--arraylets",     "--dynamic-failures",
    "--incremental-mark", "--concurrent-mark",
    "--mark-budget",
    "--gc-threads",    "--mutator-threads",
    "--mutator-lanes", "--reps",
    "--seed",          "--trace",
    "--metrics-out",   "--snapshot-every",
    "--help"};

const std::vector<std::string> SoakFlags = {
    "--profile",         "--collector",
    "--adversary",       "--campaign",
    "--seed",            "--heap-factor",
    "--heap-mb",         "--failure-rate",
    "--clustering",      "--max-debt-pages",
    "--audit-every",     "--volume-scale",
    "--wear-sim",        "--crash-campaign",
    "--incremental-mark", "--concurrent-mark",
    "--mark-budget",
    "--gc-threads",      "--mutator-threads",
    "--mutator-lanes",   "--reps",
    "--jobs",            "--trace",
    "--metrics-out",     "--snapshot-every",
    "--lifetime",        "--lifetime-checkpoints",
    "--lifetime-years",  "--lifetime-base-lines",
    "--lifetime-growth", "--escalate",
    "--verify-determinism", "--with-timing",
    "--help"};

const std::vector<std::string> ServeFlags = {
    "--tenants",          "--profile",
    "--arrival-rate",     "--duration",
    "--queue-depth",      "--quota-policy",
    "--shard-order",      "--adversary-tenant",
    "--campaign",         "--lanes",
    "--collector",        "--gc-threads",
    "--failure-rate",     "--heap-factor",
    "--warmup-scale",     "--session-steps",
    "--window-pages",     "--backpressure-lines",
    "--seed",             "--json",
    "--with-timing",      "--verify-determinism",
    "--help"};

TEST(UsageTest, RunHelpExitsZeroAndMatchesDeclaredFlags) {
  ToolResult R = runTool(std::string(WEARMEM_RUN_BIN) + " --help");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("usage: wearmem_run"), std::string::npos);
  expectFlagSetMatches(R.Output, RunFlags);
}

TEST(UsageTest, SoakHelpExitsZeroAndMatchesDeclaredFlags) {
  ToolResult R = runTool(std::string(WEARMEM_SOAK_BIN) + " --help");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
  expectFlagSetMatches(R.Output, SoakFlags);
}

TEST(UsageTest, ServeHelpExitsZeroAndMatchesDeclaredFlags) {
  ToolResult R = runTool(std::string(WEARMEM_SERVE_BIN) + " --help");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("usage: wearmem_serve"), std::string::npos);
  expectFlagSetMatches(R.Output, ServeFlags);
}

TEST(UsageTest, UnknownOptionExitsUsageNamingTheFlag) {
  ToolResult Run =
      runTool(std::string(WEARMEM_RUN_BIN) + " --no-such-flag");
  EXPECT_EQ(Run.ExitCode, wearmem::cli::ExitUsage);
  EXPECT_NE(Run.Output.find("--no-such-flag"), std::string::npos);

  ToolResult Soak =
      runTool(std::string(WEARMEM_SOAK_BIN) + " --no-such-flag");
  EXPECT_EQ(Soak.ExitCode, wearmem::cli::ExitUsage);
  EXPECT_NE(Soak.Output.find("--no-such-flag"), std::string::npos);

  ToolResult Serve =
      runTool(std::string(WEARMEM_SERVE_BIN) + " --no-such-flag");
  EXPECT_EQ(Serve.ExitCode, wearmem::cli::ExitUsage);
  EXPECT_NE(Serve.Output.find("--no-such-flag"), std::string::npos);
}

TEST(UsageTest, MalformedValuesExitUsageNamingTheFlag) {
  struct Case {
    const char *Bin;
    const char *Args;
    const char *MustMention;
  };
  const Case Cases[] = {
      {WEARMEM_RUN_BIN, "--cluster=banana", "--cluster"},
      {WEARMEM_RUN_BIN, "--failure-rate=2", "--failure-rate"},
      {WEARMEM_RUN_BIN, "--line=100", "--line"},
      {WEARMEM_RUN_BIN, "--gc-threads=0", "--gc-threads"},
      {WEARMEM_RUN_BIN, "--incremental-mark --mark-budget=potato",
       "--mark-budget"},
      {WEARMEM_RUN_BIN, "--incremental-mark --collector=ms",
       "--incremental-mark"},
      {WEARMEM_RUN_BIN, "--concurrent-mark --collector=ms",
       "--concurrent-mark"},
      {WEARMEM_RUN_BIN, "--concurrent-mark --incremental-mark",
       "--concurrent-mark"},
      {WEARMEM_RUN_BIN, "--mark-budget=8", "--mark-budget"},
      {WEARMEM_SOAK_BIN, "--seed banana", "--seed"},
      {WEARMEM_SOAK_BIN, "--gc-threads 0", "--gc-threads"},
      {WEARMEM_SOAK_BIN, "--profile", "--profile"}, // Missing value.
      {WEARMEM_SOAK_BIN, "--mark-budget 8", "--mark-budget"},
      {WEARMEM_SOAK_BIN, "--incremental-mark --collector ms",
       "--incremental-mark"},
      {WEARMEM_SOAK_BIN, "--concurrent-mark --collector ms",
       "--concurrent-mark"},
      {WEARMEM_SOAK_BIN, "--concurrent-mark --incremental-mark",
       "--concurrent-mark"},
      {WEARMEM_SOAK_BIN, "--incremental-mark --lifetime",
       "--incremental-mark"},
      {WEARMEM_SOAK_BIN, "--concurrent-mark --crash-campaign 2",
       "--concurrent-mark"},
      {WEARMEM_SERVE_BIN, "--tenants=0", "--tenants"},
      {WEARMEM_SERVE_BIN, "--tenants=banana", "--tenants"},
      {WEARMEM_SERVE_BIN, "--arrival-rate=0", "--arrival-rate"},
      {WEARMEM_SERVE_BIN, "--arrival-rate=-3", "--arrival-rate"},
      {WEARMEM_SERVE_BIN, "--quota-policy=fair", "--quota-policy"},
      {WEARMEM_SERVE_BIN, "--shard-order=random", "--shard-order"},
      {WEARMEM_SERVE_BIN, "--tenants=2 --adversary-tenant=2",
       "--adversary-tenant"},
      {WEARMEM_SERVE_BIN, "--queue-depth=0", "--queue-depth"},
      {WEARMEM_SERVE_BIN, "--session-steps=0", "--session-steps"},
      {WEARMEM_SERVE_BIN, "--failure-rate=2", "--failure-rate"},
  };
  for (const Case &C : Cases) {
    ToolResult R = runTool(std::string(C.Bin) + " " + C.Args);
    EXPECT_EQ(R.ExitCode, wearmem::cli::ExitUsage)
        << C.Args << "\n" << R.Output;
    EXPECT_NE(R.Output.find(C.MustMention), std::string::npos)
        << "diagnostic for '" << C.Args << "' does not name "
        << C.MustMention << ":\n"
        << R.Output;
  }
}

TEST(UsageTest, ListExitsZero) {
  ToolResult R = runTool(std::string(WEARMEM_RUN_BIN) + " --list");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("pmd"), std::string::npos);
}

} // namespace
