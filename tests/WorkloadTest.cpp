//===- tests/WorkloadTest.cpp - Workload and runner tests -----------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "workload/Mutator.h"
#include "workload/Runner.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wearmem;

TEST(ProfileTest, SuiteShape) {
  const std::vector<Profile> &Suite = allProfiles();
  EXPECT_EQ(Suite.size(), 12u);
  EXPECT_NE(findProfile("pmd"), nullptr);
  EXPECT_NE(findProfile("xalan"), nullptr);
  EXPECT_EQ(findProfile("nope"), nullptr);
  // lusearch is buggy and excluded from analysis aggregation.
  EXPECT_TRUE(findProfile("lusearch")->Buggy);
  EXPECT_EQ(analysisProfiles().size(), 11u);
  for (const Profile &P : Suite) {
    EXPECT_GT(P.MinHeapBytes, P.LiveSetBytes) << P.Name;
    EXPECT_GT(P.AllocVolumeBytes, P.LiveSetBytes) << P.Name;
  }
}

TEST(ProfileTest, SizeSamplingMatchesMix) {
  const Profile *Pmd = findProfile("pmd");
  Rng Rand(1);
  uint64_t SmallBytes = 0, MediumBytes = 0, LargeBytes = 0;
  for (int I = 0; I != 200000; ++I) {
    SampledObject S = sampleObject(Pmd->Mix, Rand);
    uint32_t Total = objectBytesFor(S.PayloadBytes, S.NumRefs);
    if (S.Large)
      LargeBytes += Total;
    else if (Total > 256)
      MediumBytes += Total;
    else
      SmallBytes += Total;
  }
  double Sum = static_cast<double>(SmallBytes + MediumBytes + LargeBytes);
  // Byte fractions should approximate the declared mix.
  EXPECT_NEAR(SmallBytes / Sum, Pmd->Mix.SmallWeight, 0.06);
  EXPECT_NEAR(MediumBytes / Sum, Pmd->Mix.MediumWeight, 0.06);
  EXPECT_NEAR(LargeBytes / Sum, Pmd->Mix.LargeWeight, 0.06);
}

TEST(ProfileTest, XalanIsLargeHeavyPmdIsMediumHeavy) {
  EXPECT_GT(findProfile("xalan")->Mix.LargeWeight, 0.3);
  EXPECT_GT(findProfile("pmd")->Mix.MediumWeight, 0.3);
  EXPECT_GT(findProfile("jython")->Mix.MediumWeight, 0.3);
  // The buggy lusearch allocates about 3x the fixed version.
  EXPECT_GE(findProfile("lusearch")->AllocVolumeBytes,
            3 * findProfile("lusearch-fix")->AllocVolumeBytes);
}

TEST(MutatorTest, DeterministicAcrossRuns) {
  const Profile *P = findProfile("avrora");
  RuntimeConfig Config;
  Config.HeapBytes = heapBytesFor(*P, 2.0);
  RunResult A = runOnce(*P, Config, 123);
  RunResult B = runOnce(*P, Config, 123);
  ASSERT_TRUE(A.Completed);
  ASSERT_TRUE(B.Completed);
  EXPECT_EQ(A.Stats.ObjectsAllocated, B.Stats.ObjectsAllocated);
  EXPECT_EQ(A.Stats.BytesAllocated, B.Stats.BytesAllocated);
  EXPECT_EQ(A.Stats.GcCount, B.Stats.GcCount);
  EXPECT_EQ(A.Stats.ObjectsMarked, B.Stats.ObjectsMarked);
}

TEST(MutatorTest, DifferentSeedsDiffer) {
  const Profile *P = findProfile("avrora");
  RuntimeConfig Config;
  Config.HeapBytes = heapBytesFor(*P, 2.0);
  RunResult A = runOnce(*P, Config, 123);
  RunResult B = runOnce(*P, Config, 124);
  EXPECT_NE(A.Stats.BytesAllocated, B.Stats.BytesAllocated);
}

TEST(MutatorTest, TinyHeapReportsDnf) {
  const Profile *P = findProfile("hsqldb");
  RuntimeConfig Config;
  Config.HeapBytes = 2 * MiB; // Far below the 6 MiB live set.
  RunResult R = runOnce(*P, Config);
  EXPECT_FALSE(R.Completed);
}

TEST(MutatorTest, LiveSetApproximatesTarget) {
  const Profile *P = findProfile("eclipse");
  RuntimeConfig Config;
  Config.HeapBytes = heapBytesFor(*P, 3.0);
  Runtime Rt(Config);
  Mutator M(Rt, *P, 42);
  ASSERT_TRUE(M.setUp());
  double Mean = meanObjectBytes(P->Mix);
  EXPECT_NEAR(static_cast<double>(M.backboneSlots()) * Mean,
              static_cast<double>(P->LiveSetBytes),
              0.1 * static_cast<double>(P->LiveSetBytes));
}

// Integration: every profile completes at 2x its calibrated minimum with
// the paper's default collector.
class ProfileCompletionTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(ProfileCompletionTest, CompletesAtTwiceMinHeap) {
  const Profile *P = findProfile(GetParam());
  ASSERT_NE(P, nullptr);
  RuntimeConfig Config;
  Config.HeapBytes = heapBytesFor(*P, 2.0);
  RunResult R = runOnce(*P, Config);
  EXPECT_TRUE(R.Completed) << P->Name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileCompletionTest,
                         ::testing::Values("avrora", "bloat", "eclipse",
                                           "fop", "hsqldb", "jython",
                                           "luindex", "lusearch",
                                           "lusearch-fix", "pmd",
                                           "sunflow", "xalan"));

TEST(RunnerTest, NormalizationAndDnf) {
  AggregateResult Good;
  Good.Completed = true;
  Good.MeanMs = 150.0;
  AggregateResult Base;
  Base.Completed = true;
  Base.MeanMs = 100.0;
  EXPECT_DOUBLE_EQ(normalizedTime(Good, Base), 1.5);
  AggregateResult Dnf;
  Dnf.Completed = false;
  EXPECT_TRUE(std::isnan(normalizedTime(Dnf, Base)));
  EXPECT_TRUE(std::isnan(normalizedTime(Good, Dnf)));

  EXPECT_NEAR(geomeanNormalized({1.0, 4.0}), 2.0, 1e-9);
  EXPECT_TRUE(std::isnan(geomeanNormalized({1.0, std::nan("")})));
}

TEST(RunnerTest, RepeatedRunsAggregate) {
  const Profile *P = findProfile("luindex");
  RuntimeConfig Config;
  Config.HeapBytes = heapBytesFor(*P, 2.0);
  AggregateResult Agg = runRepeated(*P, Config, 3);
  EXPECT_TRUE(Agg.Completed);
  EXPECT_GT(Agg.MeanMs, 0.0);
  EXPECT_GE(Agg.Ci95Ms, 0.0);
}
