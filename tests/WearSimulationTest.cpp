//===- tests/WearSimulationTest.cpp - Wear-count telemetry tests ----------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Complements WearTest.cpp (which checks the failure *patterns*): these
// tests pin down the wear *accounting* that feeds the obs heatmaps -
// write conservation, determinism, monotonicity under longer runs - and
// the heatmap JSON round trip built on top of it.
//
//===----------------------------------------------------------------------===//

#include "obs/Snapshot.h"
#include "pcm/WearSimulation.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace wearmem;

namespace {

WearSimConfig smallConfig(bool UseStartGap) {
  WearSimConfig Config;
  Config.NumLines = 512;
  Config.MeanLineLifetime = 800;
  Config.HotFraction = 0.1;
  Config.HotWeight = 0.9;
  Config.UseStartGap = UseStartGap;
  Config.GapInterval = 4;
  Config.Seed = 0x5EEDULL;
  return Config;
}

uint64_t totalWear(const WearSimResult &R) {
  return std::accumulate(R.WearCounts.begin(), R.WearCounts.end(),
                         uint64_t{0});
}

} // namespace

TEST(WearSimulationTest, UnleveledWearConservesWrites) {
  WearSimResult R = simulateWear(smallConfig(false), 0.08);
  ASSERT_EQ(R.WearCounts.size(), size_t{512});
  // Without leveling every write lands on exactly one logical line (dead
  // cells keep absorbing), so per-line wear must sum to the write total.
  EXPECT_EQ(totalWear(R), R.TotalWrites);
}

TEST(WearSimulationTest, LeveledWearAccountsForGapCopies) {
  // Leveling is not free: every gap movement copies a line, and that
  // copy wears the destination. Total wear therefore exceeds the demand
  // write count by roughly one write per GapInterval demand writes (the
  // current gap slot's history is the only wear the logical view drops).
  WearSimConfig Config = smallConfig(true);
  WearSimResult R = simulateWear(Config, 0.08);
  EXPECT_GT(totalWear(R), R.TotalWrites);
  uint64_t Surplus = totalWear(R) - R.TotalWrites;
  EXPECT_LE(Surplus, R.TotalWrites / Config.GapInterval);
  EXPECT_GT(Surplus, R.TotalWrites / Config.GapInterval / 2);
}

TEST(WearSimulationTest, SameSeedIsDeterministic) {
  WearSimResult A = simulateWear(smallConfig(false), 0.08);
  WearSimResult B = simulateWear(smallConfig(false), 0.08);
  EXPECT_EQ(A.TotalWrites, B.TotalWrites);
  EXPECT_EQ(A.WritesAtFirstFailure, B.WritesAtFirstFailure);
  EXPECT_EQ(A.WearCounts, B.WearCounts);
  ASSERT_EQ(A.Map.numLines(), B.Map.numLines());
  for (size_t L = 0; L != A.Map.numLines(); ++L)
    EXPECT_EQ(A.Map.isFailed(L), B.Map.isFailed(L));
}

TEST(WearSimulationTest, LongerRunsOnlyGrowWear) {
  // The same seed replays the same write sequence, so running to a
  // higher failure target extends the shorter run: every per-line wear
  // counter is monotonically non-decreasing, as is the write total.
  WearSimResult Short = simulateWear(smallConfig(false), 0.04);
  WearSimResult Long = simulateWear(smallConfig(false), 0.12);
  EXPECT_GE(Long.TotalWrites, Short.TotalWrites);
  EXPECT_EQ(Long.WritesAtFirstFailure, Short.WritesAtFirstFailure);
  ASSERT_EQ(Long.WearCounts.size(), Short.WearCounts.size());
  for (size_t L = 0; L != Short.WearCounts.size(); ++L)
    EXPECT_GE(Long.WearCounts[L], Short.WearCounts[L]) << "line " << L;
  // Failures never heal: the short run's failed lines stay failed.
  for (size_t L = 0; L != Short.Map.numLines(); ++L) {
    if (Short.Map.isFailed(L)) {
      EXPECT_TRUE(Long.Map.isFailed(L)) << "line " << L;
    }
  }
}

TEST(WearSimulationTest, LevelingSpreadsWearAcrossLines) {
  // Under skewed traffic the unleveled hot prefix absorbs most wear;
  // Start-Gap shuffles the mapping so the hot share shrinks toward the
  // uniform share.
  WearSimResult Unleveled = simulateWear(smallConfig(false), 0.08);
  WearSimConfig Leveled = smallConfig(true);
  Leveled.GapInterval = 1;
  WearSimResult Spread = simulateWear(Leveled, 0.08);
  size_t HotLines = 51; // 10% of 512
  auto HotShare = [&](const WearSimResult &R) {
    uint64_t Hot = std::accumulate(R.WearCounts.begin(),
                                   R.WearCounts.begin() + HotLines,
                                   uint64_t{0});
    return static_cast<double>(Hot) / static_cast<double>(totalWear(R));
  };
  EXPECT_GT(HotShare(Unleveled), 0.8);
  EXPECT_LT(HotShare(Spread), 0.5);
}

TEST(WearSimulationTest, HeatmapConservesTotalsAndFailures) {
  WearSimResult R = simulateWear(smallConfig(false), 0.08);
  obs::WearHeatmap Map = obs::WearHeatmap::fromWearSim(R, 64);
  EXPECT_EQ(Map.LinesPerBucket, 64u);
  EXPECT_EQ(Map.TotalLines, 512u);
  EXPECT_EQ(Map.Buckets.size(), 8u);
  EXPECT_EQ(Map.TotalWear, totalWear(R));
  EXPECT_EQ(Map.FailedLines, R.Map.failedCount());
  uint64_t BucketWear = 0, BucketFailed = 0, BucketLines = 0;
  for (const obs::WearBucket &B : Map.Buckets) {
    BucketWear += B.Wear;
    BucketFailed += B.Failed;
    BucketLines += B.Lines;
  }
  EXPECT_EQ(BucketWear, Map.TotalWear);
  EXPECT_EQ(BucketFailed, Map.FailedLines);
  EXPECT_EQ(BucketLines, Map.TotalLines);
}

TEST(WearSimulationTest, HeatmapHandlesShortLastBucket) {
  // 512 lines in buckets of 100: the sixth bucket covers only 12 lines.
  WearSimResult R = simulateWear(smallConfig(false), 0.05);
  obs::WearHeatmap Map = obs::WearHeatmap::fromWearSim(R, 100);
  ASSERT_EQ(Map.Buckets.size(), 6u);
  EXPECT_EQ(Map.Buckets.back().Lines, 12u);
  uint64_t Lines = 0;
  for (const obs::WearBucket &B : Map.Buckets)
    Lines += B.Lines;
  EXPECT_EQ(Lines, 512u);
}

TEST(WearSimulationTest, HeatmapJsonRoundTrips) {
  WearSimResult R = simulateWear(smallConfig(false), 0.08);
  obs::WearHeatmap Map = obs::WearHeatmap::fromWearSim(R, 64);
  std::string Json = Map.toJsonString();
  obs::WearHeatmap Back;
  ASSERT_TRUE(obs::WearHeatmap::fromJsonString(Json, Back));
  EXPECT_TRUE(Map == Back);
  // And the round trip is a fixed point at the text level too.
  EXPECT_EQ(Back.toJsonString(), Json);
}

TEST(WearSimulationTest, HeatmapJsonRejectsMalformedInput) {
  obs::WearHeatmap Out;
  EXPECT_FALSE(obs::WearHeatmap::fromJsonString("", Out));
  EXPECT_FALSE(obs::WearHeatmap::fromJsonString("{}", Out));
  EXPECT_FALSE(obs::WearHeatmap::fromJsonString("not json at all", Out));
}
