//===- tests/ClusteringHardwareTest.cpp - Redirection hardware tests ------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "pcm/ClusteringHardware.h"

#include <gtest/gtest.h>

#include <set>

using namespace wearmem;

namespace {
std::function<void(unsigned)> noCapture() {
  return [](unsigned) {};
}
} // namespace

TEST(RegionRedirectorTest, IdentityUntilFirstFailure) {
  RegionRedirector R(128, /*ClusterAtStart=*/true, /*MetaLines=*/2);
  EXPECT_FALSE(R.installed());
  for (unsigned I = 0; I != 128; ++I)
    EXPECT_EQ(R.translate(I), I);
  EXPECT_EQ(R.deadLines(), 0u);
}

TEST(RegionRedirectorTest, FirstFailureInstallsMapAndMetadata) {
  RegionRedirector R(128, true, 2);
  std::vector<unsigned> Captured;
  RedirectOutcome Outcome = R.onFailure(
      60, [&Captured](unsigned Off) { Captured.push_back(Off); });
  EXPECT_TRUE(Outcome.InstalledMap);
  // Metadata lines 0 and 1, then the boundary victim 2.
  ASSERT_EQ(Outcome.NewlyFailedLogical.size(), 3u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[0], 0u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[1], 1u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[2], 2u);
  EXPECT_EQ(Captured, (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(R.deadLines(), 3u);
  // Logical 60 now maps to the physical line that backed logical 2; the
  // dead physical 60 retired at logical slot 2.
  EXPECT_EQ(R.translate(60), 2u);
  EXPECT_EQ(R.translate(2), 60u);
  EXPECT_TRUE(R.isLogicallyDead(0));
  EXPECT_TRUE(R.isLogicallyDead(2));
  EXPECT_FALSE(R.isLogicallyDead(3));
  EXPECT_FALSE(R.isLogicallyDead(60));
}

TEST(RegionRedirectorTest, SubsequentFailuresAdvanceBoundary) {
  RegionRedirector R(128, true, 2);
  R.onFailure(60, noCapture());
  RedirectOutcome Second = R.onFailure(100, noCapture());
  EXPECT_FALSE(Second.InstalledMap);
  ASSERT_EQ(Second.NewlyFailedLogical.size(), 1u);
  EXPECT_EQ(Second.NewlyFailedLogical[0], 3u);
  EXPECT_EQ(R.deadLines(), 4u);
  EXPECT_EQ(R.translate(100), 3u);
}

TEST(RegionRedirectorTest, ClusterAtEnd) {
  RegionRedirector R(64, /*ClusterAtStart=*/false, 1);
  RedirectOutcome Outcome = R.onFailure(10, noCapture());
  // Metadata at 63, victim at 62.
  ASSERT_EQ(Outcome.NewlyFailedLogical.size(), 2u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[0], 63u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[1], 62u);
  EXPECT_TRUE(R.isLogicallyDead(63));
  EXPECT_TRUE(R.isLogicallyDead(62));
  EXPECT_FALSE(R.isLogicallyDead(0));
}

TEST(RegionRedirectorTest, MappingStaysBijective) {
  RegionRedirector R(128, true, 2);
  Rng Rand(5);
  for (int Failure = 0; Failure != 50; ++Failure) {
    // Fail a random live logical line.
    unsigned Off;
    do {
      Off = static_cast<unsigned>(Rand.nextBelow(128));
    } while (R.isLogicallyDead(Off));
    R.onFailure(Off, noCapture());
    std::set<unsigned> Physical;
    for (unsigned I = 0; I != 128; ++I)
      Physical.insert(R.translate(I));
    EXPECT_EQ(Physical.size(), 128u) << "mapping lost bijectivity";
  }
  // 50 failures + 2 metadata lines are dead.
  EXPECT_EQ(R.deadLines(), 52u);
}

TEST(RegionRedirectorTest, FailureOnMetadataSlot) {
  // The failing line is logical 0, which is exactly where the map goes:
  // the hardware consumes an extra boundary slot for the dead physical
  // line.
  RegionRedirector R(64, true, 1);
  RedirectOutcome Outcome = R.onFailure(0, noCapture());
  EXPECT_TRUE(Outcome.InstalledMap);
  ASSERT_EQ(Outcome.NewlyFailedLogical.size(), 2u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[0], 0u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[1], 1u);
  // Bijection preserved.
  std::set<unsigned> Physical;
  for (unsigned I = 0; I != 64; ++I)
    Physical.insert(R.translate(I));
  EXPECT_EQ(Physical.size(), 64u);
}

TEST(ClusteringHardwareTest, AlternatingDirections) {
  ClusteringHardware Hw(/*NumPages=*/8, /*RegionPages=*/2);
  EXPECT_EQ(Hw.numRegions(), 4u);
  EXPECT_EQ(Hw.linesPerRegion(), 128u);
  // Fail one line in region 0 (even: clusters at start) and one in
  // region 1 (odd: clusters at end).
  Hw.routeFailure(50, [](LineIndex) {});
  Hw.routeFailure(128 + 50, [](LineIndex) {});
  EXPECT_TRUE(Hw.isLogicallyDead(0));
  EXPECT_TRUE(Hw.isLogicallyDead(2)); // 2 metadata + 1 victim at start.
  EXPECT_TRUE(Hw.isLogicallyDead(255));
  EXPECT_TRUE(Hw.isLogicallyDead(253));
  EXPECT_FALSE(Hw.isLogicallyDead(64));
  EXPECT_FALSE(Hw.isLogicallyDead(50));
}

TEST(ClusteringHardwareTest, MapCacheCountsLookups) {
  ClusteringHardware Hw(8, 2, /*MapCacheSize=*/2);
  Hw.routeFailure(5, [](LineIndex) {});
  EXPECT_EQ(Hw.mapLookups(), 0u);
  Hw.translate(10); // Region 0: installed, first lookup misses the cache.
  Hw.translate(11); // Hit.
  EXPECT_EQ(Hw.mapLookups(), 2u);
  EXPECT_EQ(Hw.mapCacheHits(), 1u);
  // Uninstalled regions never consult a map.
  Hw.translate(300);
  EXPECT_EQ(Hw.mapLookups(), 2u);
}

TEST(ClusteringHardwareTest, ModuleWideIndices) {
  ClusteringHardware Hw(4, 2);
  std::vector<LineIndex> Captured;
  RedirectOutcome Outcome = Hw.routeFailure(
      128 + 77, [&Captured](LineIndex L) { Captured.push_back(L); });
  // Region 1 (odd) clusters at its end: lines 255, 254 (metadata), 253.
  ASSERT_EQ(Outcome.NewlyFailedLogical.size(), 3u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[0], 255u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[1], 254u);
  EXPECT_EQ(Outcome.NewlyFailedLogical[2], 253u);
  EXPECT_EQ(Captured.size(), 3u);
  for (LineIndex L : Captured)
    EXPECT_GE(L, 128u);
}

// The hardware swaps right up to the capacity boundary: a region may
// reach *exactly* half its lines dead without demoting.
TEST(RegionRedirectorTest, RemapsUpToExactlyHalfDead) {
  RegionRedirector R(128, true, 2);
  // Re-failing the same logical line wears out whatever physical line
  // currently backs it, so each failure consumes one more boundary slot
  // while logical 100 stays live.
  while (R.deadLines() < R.remapCapacity()) {
    RedirectOutcome Outcome = R.onFailure(100, noCapture());
    EXPECT_FALSE(Outcome.Refused);
    EXPECT_FALSE(Outcome.AlreadyDead);
  }
  EXPECT_EQ(R.deadLines(), R.remapCapacity());
  EXPECT_EQ(R.deadLines(), 64u);
  EXPECT_FALSE(R.demoted());
  EXPECT_FALSE(R.isLogicallyDead(100));
  EXPECT_EQ(R.failedInPlace(), 0u);
}

// One failure past capacity is refused: no swap, the line dies in place,
// and the region demotes to fail-in-place for good.
TEST(RegionRedirectorTest, OnePastCapacityRefusesAndDemotes) {
  RegionRedirector R(128, true, 2);
  while (R.deadLines() < R.remapCapacity())
    R.onFailure(100, noCapture());

  unsigned MappingBefore = R.translate(100);
  RedirectOutcome Past = R.onFailure(100, noCapture());
  EXPECT_TRUE(Past.Refused);
  EXPECT_FALSE(Past.AlreadyDead);
  ASSERT_EQ(Past.NewlyFailedLogical.size(), 1u);
  EXPECT_EQ(Past.NewlyFailedLogical[0], 100u);
  EXPECT_TRUE(R.demoted());
  EXPECT_TRUE(R.isLogicallyDead(100));
  EXPECT_EQ(R.failedInPlace(), 1u);
  // No swap happened: the boundary and the mapping are untouched.
  EXPECT_EQ(R.deadLines(), R.remapCapacity());
  EXPECT_EQ(R.translate(100), MappingBefore);

  // Every later failure in the demoted region also dies in place.
  RedirectOutcome Next = R.onFailure(101, noCapture());
  EXPECT_TRUE(Next.Refused);
  EXPECT_EQ(R.failedInPlace(), 2u);
}

// Failure reports for lines that are already logically dead - clustered
// boundary slots, metadata lines, or in-place deaths after demotion - are
// graceful no-ops, so journal replays and duplicate interrupts are
// idempotent.
TEST(RegionRedirectorTest, AlreadyDeadFailureIsIdempotent) {
  RegionRedirector R(128, true, 2);
  R.onFailure(100, noCapture()); // installs: 0, 1 (metadata), 2 dead

  for (unsigned Dead : {0u, 1u, 2u}) {
    unsigned Captures = 0;
    RedirectOutcome Dup =
        R.onFailure(Dead, [&Captures](unsigned) { ++Captures; });
    EXPECT_TRUE(Dup.AlreadyDead);
    EXPECT_FALSE(Dup.Refused);
    EXPECT_TRUE(Dup.NewlyFailedLogical.empty());
    EXPECT_EQ(Captures, 0u);
  }
  EXPECT_EQ(R.deadLines(), 3u);

  // Post-demotion in-place deaths replay idempotently too.
  while (R.deadLines() < R.remapCapacity())
    R.onFailure(100, noCapture());
  R.onFailure(100, noCapture()); // dies in place, demotes
  RedirectOutcome Dup = R.onFailure(100, noCapture());
  EXPECT_TRUE(Dup.AlreadyDead);
  EXPECT_EQ(R.failedInPlace(), 1u);
}

// The same boundary semantics hold through the module-wide interface, and
// demotion stays contained to its region.
TEST(ClusteringHardwareTest, CapacityBoundaryPerRegion) {
  ClusteringHardware Hw(4, 2); // two regions of 128 lines
  const RegionRedirector &R0 = Hw.region(0);
  while (R0.deadLines() < R0.remapCapacity()) {
    RedirectOutcome Outcome = Hw.routeFailure(100, [](LineIndex) {});
    EXPECT_FALSE(Outcome.Refused);
  }
  RedirectOutcome Past = Hw.routeFailure(100, [](LineIndex) {});
  EXPECT_TRUE(Past.Refused);
  ASSERT_EQ(Past.NewlyFailedLogical.size(), 1u);
  EXPECT_EQ(Past.NewlyFailedLogical[0], 100u);
  EXPECT_TRUE(Hw.isLogicallyDead(100));
  EXPECT_TRUE(Hw.region(0).demoted());
  // Region 1 is untouched and still remaps normally.
  EXPECT_FALSE(Hw.region(1).demoted());
  RedirectOutcome Other = Hw.routeFailure(200, [](LineIndex) {});
  EXPECT_FALSE(Other.Refused);
  EXPECT_TRUE(Other.InstalledMap);
}
