//===- tests/FaultCampaignTest.cpp - Fault-campaign engine tests ----------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "gc/HeapAuditor.h"
#include "inject/FaultCampaign.h"
#include "pcm/PcmDevice.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace wearmem;

namespace {

RuntimeConfig testConfig() {
  RuntimeConfig Config;
  Config.HeapBytes = 4 * MiB;
  Config.Seed = 0xC0FFEE;
  return Config;
}

/// Roots roughly \p Bytes of small live objects and runs a full
/// collection so their lines carry the current epoch mark (campaign
/// shapes target live lines).
std::vector<Handle> populate(Runtime &Rt, size_t Bytes) {
  std::vector<Handle> Roots;
  for (size_t Allocated = 0; Allocated < Bytes; Allocated += 80) {
    Roots.push_back(Rt.allocateRooted(48, 2));
    EXPECT_NE(Roots.back().get(), nullptr);
  }
  Rt.collect(true);
  return Roots;
}

/// Every failed Immix line as (block ordinal, line index), in iteration
/// order; two identical runs must produce identical sets.
std::vector<std::pair<size_t, unsigned>> failedLineSet(Runtime &Rt) {
  std::vector<std::pair<size_t, unsigned>> Out;
  size_t Ordinal = 0;
  Rt.heap().immixSpace()->forEachBlock([&](Block &B) {
    for (unsigned Line = 0; Line != B.lineCount(); ++Line)
      if (B.lineIsFailed(Line))
        Out.emplace_back(Ordinal, Line);
    ++Ordinal;
  });
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Schedule parsing
//===----------------------------------------------------------------------===//

TEST(FaultCampaignParse, SingleDrip) {
  auto Triggers = FaultCampaign::parseSchedule("drip@alloc:1m+256k");
  ASSERT_TRUE(Triggers.has_value());
  ASSERT_EQ(Triggers->size(), 1u);
  const FaultTrigger &T = (*Triggers)[0];
  EXPECT_EQ(T.Shape, FaultShape::Drip);
  EXPECT_EQ(T.Clock, TriggerClock::AllocBytes);
  EXPECT_EQ(T.Start, 1u * MiB);
  EXPECT_EQ(T.Period, 256u * KiB);
  EXPECT_EQ(T.Repeats, 0u); // Unbounded.
  EXPECT_EQ(T.Lines, 1u);
  EXPECT_FALSE(T.Hot);
}

TEST(FaultCampaignParse, MultiEntryWithOptions) {
  auto Triggers = FaultCampaign::parseSchedule(
      "storm@gc:10+5x6:lines=24,hot; region@writes:8:pages=2");
  ASSERT_TRUE(Triggers.has_value());
  ASSERT_EQ(Triggers->size(), 2u);
  const FaultTrigger &Storm = (*Triggers)[0];
  EXPECT_EQ(Storm.Shape, FaultShape::Storm);
  EXPECT_EQ(Storm.Clock, TriggerClock::GcCount);
  EXPECT_EQ(Storm.Start, 10u);
  EXPECT_EQ(Storm.Period, 5u);
  EXPECT_EQ(Storm.Repeats, 6u);
  EXPECT_EQ(Storm.Lines, 24u);
  EXPECT_TRUE(Storm.Hot);
  const FaultTrigger &Region = (*Triggers)[1];
  EXPECT_EQ(Region.Shape, FaultShape::Region);
  EXPECT_EQ(Region.Clock, TriggerClock::Writes);
  EXPECT_EQ(Region.Start, 8u);
  EXPECT_EQ(Region.Period, 0u); // One-shot.
  EXPECT_EQ(Region.Pages, 2u);
}

TEST(FaultCampaignParse, RejectsMalformedEntries) {
  const char *Bad[] = {
      "",                    // Empty schedule.
      "drip:100",            // Missing @clock.
      "flood@gc:1",          // Unknown shape.
      "drip@time:1",         // Unknown clock.
      "drip@gc:x5",          // Bad start.
      "drip@gc:1+",          // Bad period.
      "drip@gc:1+2x0",       // Zero repeats.
      "drip@gc:1q",          // Trailing junk.
      "drip@gc:1:lines=0",   // Zero-valued option.
      "drip@gc:1:holes=3",   // Unknown option.
  };
  for (const char *Text : Bad) {
    std::string Error;
    EXPECT_FALSE(FaultCampaign::parseSchedule(Text, &Error).has_value())
        << "accepted '" << Text << "'";
    EXPECT_FALSE(Error.empty());
  }
}

//===----------------------------------------------------------------------===//
// Heap-targeted campaigns
//===----------------------------------------------------------------------===//

TEST(FaultCampaignTest, DripIsDeterministicForAFixedSeed) {
  auto Triggers = FaultCampaign::parseSchedule("drip@gc:1:lines=6");
  ASSERT_TRUE(Triggers.has_value());

  auto runOnce = [&](Runtime &Rt, FaultCampaign &Campaign) {
    auto Roots = populate(Rt, MiB);
    EXPECT_TRUE(Campaign.pump());
  };

  Runtime RtA(testConfig());
  FaultCampaign CampaignA(*Triggers, 99);
  CampaignA.attachRuntime(RtA);
  runOnce(RtA, CampaignA);

  Runtime RtB(testConfig());
  FaultCampaign CampaignB(*Triggers, 99);
  CampaignB.attachRuntime(RtB);
  runOnce(RtB, CampaignB);

  EXPECT_EQ(CampaignA.stats().LinesFailed, 6u);
  ASSERT_EQ(CampaignA.trace().size(), CampaignB.trace().size());
  for (size_t I = 0; I != CampaignA.trace().size(); ++I) {
    EXPECT_EQ(CampaignA.trace()[I].BlockOrdinal,
              CampaignB.trace()[I].BlockOrdinal);
    EXPECT_EQ(CampaignA.trace()[I].ByteOffset,
              CampaignB.trace()[I].ByteOffset);
  }
  EXPECT_EQ(failedLineSet(RtA), failedLineSet(RtB));
}

TEST(FaultCampaignTest, StormDefersRecoveryUntilNextCollection) {
  auto Triggers = FaultCampaign::parseSchedule("storm@gc:1:lines=8,hot");
  ASSERT_TRUE(Triggers.has_value());
  Runtime Rt(testConfig());
  FaultCampaign Campaign(*Triggers, 7);
  Campaign.attachRuntime(Rt);
  auto Roots = populate(Rt, MiB);

  ASSERT_TRUE(Campaign.pump());
  EXPECT_EQ(Campaign.stats().LinesFailed, 8u);
  // Below the emergency threshold the lines are fenced but recovery
  // waits for the collector.
  EXPECT_TRUE(Rt.heap().pendingFailureRecovery());
  EXPECT_EQ(Rt.stats().DynamicFailureBatches, 1u);
  EXPECT_EQ(Rt.stats().EmergencyDefrags, 0u);

  Rt.collect(true);
  EXPECT_FALSE(Rt.heap().pendingFailureRecovery());
  EXPECT_EQ(Rt.stats().DeferredFailureRecoveries, 1u);

  HeapAuditor Auditor(Rt.heap());
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed())
      << (Report.Violations.empty() ? "" : Report.Violations[0]);
}

TEST(FaultCampaignTest, HugeBatchTriggersEmergencyDefrag) {
  // 64 lines in one burst crosses the default emergency threshold (32):
  // recovery must run immediately instead of waiting.
  auto Triggers = FaultCampaign::parseSchedule("storm@gc:1:lines=64,hot");
  ASSERT_TRUE(Triggers.has_value());
  Runtime Rt(testConfig());
  FaultCampaign Campaign(*Triggers, 7);
  Campaign.attachRuntime(Rt);
  auto Roots = populate(Rt, MiB);

  ASSERT_TRUE(Campaign.pump());
  EXPECT_GE(Campaign.stats().LinesFailed, 32u);
  EXPECT_GE(Rt.stats().EmergencyDefrags, 1u);
  EXPECT_FALSE(Rt.heap().pendingFailureRecovery());
}

TEST(FaultCampaignTest, ReplayReproducesARecordedRun) {
  auto Triggers = FaultCampaign::parseSchedule("drip@gc:1:lines=6");
  ASSERT_TRUE(Triggers.has_value());

  Runtime RtA(testConfig());
  FaultCampaign CampaignA(*Triggers, 99);
  CampaignA.attachRuntime(RtA);
  auto RootsA = populate(RtA, MiB);
  ASSERT_TRUE(CampaignA.pump());
  ASSERT_EQ(CampaignA.trace().size(), 6u);

  // A fresh, identically seeded run replays the recorded trace instead
  // of scheduling its own triggers - and lands on the same lines.
  Runtime RtB(testConfig());
  FaultCampaign CampaignB(std::vector<FaultTrigger>{}, 1234);
  CampaignB.attachRuntime(RtB);
  CampaignB.setReplay(CampaignA.trace());
  auto RootsB = populate(RtB, MiB);
  ASSERT_TRUE(CampaignB.pump());

  EXPECT_EQ(CampaignB.stats().ReplayMisses, 0u);
  EXPECT_EQ(CampaignB.stats().LinesFailed, 6u);
  EXPECT_TRUE(CampaignB.exhausted());
  EXPECT_EQ(failedLineSet(RtA), failedLineSet(RtB));
}

TEST(FaultCampaignTest, EscalationReArmsAtDoubledIntensity) {
  auto Triggers = FaultCampaign::parseSchedule("storm@gc:1:lines=4,hot");
  ASSERT_TRUE(Triggers.has_value());
  Runtime Rt(testConfig());
  FaultCampaign Campaign(*Triggers, 7);
  Campaign.attachRuntime(Rt);
  Campaign.setEscalation(true);
  auto Roots = populate(Rt, MiB);

  ASSERT_TRUE(Campaign.pump());
  uint64_t FirstWave = Campaign.stats().LinesFailed;
  EXPECT_EQ(FirstWave, 4u);
  EXPECT_EQ(Campaign.stats().Escalations, 1u);
  EXPECT_FALSE(Campaign.exhausted());

  // The next collection advances the gc clock past the re-armed
  // deadline; the second wave is twice as hard.
  Rt.collect(true);
  ASSERT_TRUE(Campaign.pump());
  EXPECT_EQ(Campaign.stats().LinesFailed, FirstWave + 8u);
  EXPECT_EQ(Campaign.stats().Escalations, 2u);
}

//===----------------------------------------------------------------------===//
// Device-targeted campaigns
//===----------------------------------------------------------------------===//

TEST(FaultCampaignTest, DeviceCampaignForcesWearOutsOnWritesClock) {
  PcmDeviceConfig Config;
  Config.NumPages = 8;
  Config.MeanLineLifetime = 1000000; // No natural wear in this test.
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);

  auto Triggers = FaultCampaign::parseSchedule("drip@writes:4+4:lines=2");
  ASSERT_TRUE(Triggers.has_value());
  FaultCampaign Campaign(*Triggers, 123);
  Campaign.attachDevice(Device);

  uint8_t Data[PcmLineSize];
  std::memset(Data, 0x3C, sizeof(Data));
  Device.writeLine(0, Data);
  Campaign.pump();
  // One observed write: the trigger (armed at 4) must not have fired.
  EXPECT_EQ(Campaign.stats().Firings, 0u);

  for (unsigned I = 1; I != 20; ++I) {
    Device.writeLine(I % 64, Data); // May hit a force-failed line; fine.
    Campaign.pump();
  }
  EXPECT_GE(Campaign.stats().Firings, 4u);
  EXPECT_GT(Campaign.stats().DeviceLinesFailed, 0u);
  EXPECT_EQ(Device.stats().ForcedFailures,
            Campaign.stats().DeviceLinesFailed);
  EXPECT_GT(Device.softwareFailureMap().failedCount(), 0u);
  EXPECT_FALSE(Campaign.exhausted()); // Unbounded periodic trigger.
}
