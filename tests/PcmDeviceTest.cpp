//===- tests/PcmDeviceTest.cpp - PCM device model tests -------------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "pcm/PcmDevice.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace wearmem;

namespace {

PcmDeviceConfig smallConfig() {
  PcmDeviceConfig Config;
  Config.NumPages = 8;
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  Config.FailureBufferCapacity = 16;
  return Config;
}

void fillLine(uint8_t (&Buf)[PcmLineSize], uint8_t Fill) {
  std::memset(Buf, Fill, PcmLineSize);
}

} // namespace

TEST(PcmDeviceTest, WriteReadRoundTrip) {
  PcmDevice Device(smallConfig());
  uint8_t Data[PcmLineSize], Out[PcmLineSize];
  fillLine(Data, 0x5A);
  EXPECT_EQ(Device.writeLine(3, Data), WriteResult::Ok);
  Device.readLine(3, Out);
  EXPECT_EQ(std::memcmp(Data, Out, PcmLineSize), 0);
  EXPECT_EQ(Device.stats().LineWrites, 1u);
  EXPECT_EQ(Device.stats().LineReads, 1u);
}

TEST(PcmDeviceTest, ByteGranularityReadModifyWrite) {
  PcmDevice Device(smallConfig());
  const char *Msg = "hello, wearable memory";
  // An unaligned write spanning two lines.
  EXPECT_EQ(Device.write(60, reinterpret_cast<const uint8_t *>(Msg),
                         strlen(Msg)),
            WriteResult::Ok);
  char Back[64] = {};
  Device.read(60, reinterpret_cast<uint8_t *>(Back), strlen(Msg));
  EXPECT_STREQ(Back, Msg);
}

TEST(PcmDeviceTest, WearExhaustionFailsLine) {
  PcmDeviceConfig Config = smallConfig();
  Config.MeanLineLifetime = 5;
  PcmDevice Device(Config);
  int Interrupts = 0;
  Device.setFailureInterrupt([&Interrupts] { ++Interrupts; });

  uint8_t Data[PcmLineSize];
  fillLine(Data, 0x77);
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Device.writeLine(0, Data), WriteResult::Ok);
  // The 5th write exhausted the budget: the line is failed, the data is
  // latched and forwarded, and the interrupt fired.
  EXPECT_EQ(Interrupts, 1);
  EXPECT_EQ(Device.stats().WearFailures, 1u);
  EXPECT_TRUE(Device.softwareFailureMap().isFailed(0));
  uint8_t Out[PcmLineSize];
  Device.readLine(0, Out);
  EXPECT_EQ(Out[0], 0x77);
  EXPECT_EQ(Device.stats().BufferForwardedReads, 1u);
  // Further writes to the dead line are rejected.
  EXPECT_EQ(Device.writeLine(0, Data), WriteResult::DeadLine);
}

TEST(PcmDeviceTest, InjectImminentFailure) {
  PcmDevice Device(smallConfig());
  Device.injectImminentFailure(7);
  EXPECT_EQ(Device.remainingWrites(7), 1u);
  uint8_t Data[PcmLineSize];
  fillLine(Data, 0x01);
  EXPECT_EQ(Device.writeLine(7, Data), WriteResult::Ok);
  EXPECT_TRUE(Device.softwareFailureMap().isFailed(7));
}

TEST(PcmDeviceTest, OsClearsBufferEntry) {
  PcmDeviceConfig Config = smallConfig();
  PcmDevice Device(Config);
  Device.injectImminentFailure(2);
  uint8_t Data[PcmLineSize];
  fillLine(Data, 0x42);
  Device.writeLine(2, Data);
  ASSERT_EQ(Device.pendingFailures().size(), 1u);
  EXPECT_TRUE(Device.clearBufferEntry(addrOfLine(2)));
  EXPECT_TRUE(Device.pendingFailures().empty());
  // After the OS clears the entry, the line no longer forwards.
  uint8_t Out[PcmLineSize];
  Device.readLine(2, Out);
  EXPECT_EQ(Device.stats().DeadLineReads, 1u);
}

TEST(PcmDeviceTest, StallsWhenBufferNearFull) {
  PcmDeviceConfig Config = smallConfig();
  Config.FailureBufferCapacity = 4; // DrainReserve 2 -> stall at 2.
  PcmDevice Device(Config);
  int Stalls = 0;
  Device.setStallInterrupt([&Stalls] { ++Stalls; });

  uint8_t Data[PcmLineSize];
  fillLine(Data, 0x99);
  Device.injectImminentFailure(0);
  Device.injectImminentFailure(1);
  EXPECT_EQ(Device.writeLine(0, Data), WriteResult::Ok);
  EXPECT_EQ(Device.writeLine(1, Data), WriteResult::Ok);
  // Buffer occupancy 2 with reserve 2 of 4: the module refuses writes.
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Stalled);
  EXPECT_EQ(Stalls, 1);
  // Draining one entry re-enables writes.
  Device.clearBufferEntry(addrOfLine(0));
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Ok);
}

TEST(PcmDeviceTest, ClusteringRedirectsFailuresToRegionEnds) {
  PcmDeviceConfig Config = smallConfig();
  Config.ClusteringEnabled = true;
  Config.RegionPages = 2;
  PcmDevice Device(Config);

  // Write distinctive data to two victim-area lines, then wear out a
  // middle line; software must see failures only at the region edge, and
  // all data must remain readable.
  uint8_t DataA[PcmLineSize], DataB[PcmLineSize], DataC[PcmLineSize];
  fillLine(DataA, 0xAA);
  fillLine(DataB, 0xBB);
  fillLine(DataC, 0xCC);
  ASSERT_EQ(Device.writeLine(0, DataA), WriteResult::Ok); // Future meta.
  ASSERT_EQ(Device.writeLine(2, DataB), WriteResult::Ok); // Future victim.
  Device.injectImminentFailure(40);
  ASSERT_EQ(Device.writeLine(40, DataC), WriteResult::Ok);

  const FailureMap &Map = Device.softwareFailureMap();
  // Region 0 clusters at its start: metadata lines 0,1 plus one victim.
  EXPECT_TRUE(Map.isFailed(0));
  EXPECT_TRUE(Map.isFailed(1));
  EXPECT_TRUE(Map.isFailed(2));
  EXPECT_FALSE(Map.isFailed(40));

  // Line 40's write is durable at its new backing; displaced data for
  // lines 0 and 2 is forwarded from the failure buffer.
  uint8_t Out[PcmLineSize];
  Device.readLine(40, Out);
  EXPECT_EQ(Out[0], 0xCC);
  Device.readLine(0, Out);
  EXPECT_EQ(Out[0], 0xAA);
  Device.readLine(2, Out);
  EXPECT_EQ(Out[0], 0xBB);
}

TEST(PcmDeviceTest, ClusteredLineRemainsWritable) {
  PcmDeviceConfig Config = smallConfig();
  Config.ClusteringEnabled = true;
  Config.RegionPages = 1;
  PcmDevice Device(Config);
  uint8_t Data[PcmLineSize];
  fillLine(Data, 0x10);
  Device.injectImminentFailure(30);
  ASSERT_EQ(Device.writeLine(30, Data), WriteResult::Ok);
  EXPECT_FALSE(Device.softwareFailureMap().isFailed(30));
  // The logical line survived onto a fresh physical line; keep writing.
  fillLine(Data, 0x11);
  EXPECT_EQ(Device.writeLine(30, Data), WriteResult::Ok);
  uint8_t Out[PcmLineSize];
  Device.readLine(30, Out);
  EXPECT_EQ(Out[0], 0x11);
}

TEST(PcmDeviceTest, LifetimeVariationSpreadsBudgets) {
  PcmDeviceConfig Config = smallConfig();
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.25;
  PcmDevice Device(Config);
  uint64_t Min = ~0ull, Max = 0;
  for (LineIndex Line = 0; Line != Device.numLines(); ++Line) {
    uint64_t Budget = Device.remainingWrites(Line);
    Min = std::min(Min, Budget);
    Max = std::max(Max, Budget);
  }
  EXPECT_LT(Min, 900u);
  EXPECT_GT(Max, 1100u);
}
