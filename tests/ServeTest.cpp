//===- tests/ServeTest.cpp - Multi-tenant serve harness tests -------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Cross-tenant interference accounting and isolation contracts of the
// sharded serve harness (src/serve):
//
//  - a shard driven into failure-storm backpressure charges the *victim*
//    shards' stall counters, mirrored by the aggressor's inflicted
//    count, deterministically across reruns;
//  - a shard collapsing into Emergency must not perturb a neighbor
//    shard's heap digest, served count, or sojourn distribution;
//  - a starved perfect-page window produces typed quota rejections under
//    both split policies; a full admission queue produces typed
//    queue-full rejections; every arrival is conserved across
//    admitted + rejected.
//
// The cross-run determinism matrix (shard orders, GC workers) lives in
// bench/serve01_multitenant; these tests pin the semantics.
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "gtest/gtest.h"

using namespace wearmem;

namespace {

/// A light storm: enough dynamic line failures to cross the 16-line
/// backpressure threshold at the neighbors, not enough to climb the
/// degradation ladder.
constexpr const char *LightStorm = "storm@alloc:2m+160k:lines=24,hot";
/// A heavy storm against a half-sized carve: dynamic failed-line
/// fraction crosses the Emergency threshold within the run.
constexpr const char *HeavyStorm = "storm@alloc:2m+120k:lines=200,hot";

ServeOptions twoTenants(const char *NeighborCampaign,
                        double NeighborBudgetScale = 1.0) {
  ServeOptions Opt;
  Opt.Tenants.resize(2);
  Opt.Tenants[1].Campaign = NeighborCampaign;
  Opt.Tenants[1].BudgetScale = NeighborBudgetScale;
  Opt.ArrivalRatePerSec = 3000.0;
  Opt.DurationSec = 0.3;
  Opt.Seed = 11;
  Opt.HeapFactor = 1.5;
  Opt.Dir.BackpressureLines = 16;
  return Opt;
}

uint64_t totalRejected(const TenantServeResult &T) {
  uint64_t N = 0;
  for (uint64_t R : T.Rejected)
    N += R;
  return N;
}

void expectSameTenant(const TenantServeResult &A,
                      const TenantServeResult &B) {
  EXPECT_EQ(A.Digest, B.Digest);
  EXPECT_EQ(A.Arrivals, B.Arrivals);
  EXPECT_EQ(A.Admitted, B.Admitted);
  EXPECT_EQ(A.Served, B.Served);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.StallsObserved, B.StallsObserved);
  EXPECT_EQ(A.StallsInflicted, B.StallsInflicted);
  EXPECT_EQ(A.QuotaRejections, B.QuotaRejections);
  EXPECT_EQ(A.PerfectPagesCharged, B.PerfectPagesCharged);
  EXPECT_EQ(A.GcCount, B.GcCount);
  EXPECT_EQ(A.FailedLinesDynamic, B.FailedLinesDynamic);
  EXPECT_EQ(A.FinalMode, B.FinalMode);
  EXPECT_EQ(A.Sojourn.Count, B.Sojourn.Count);
  EXPECT_EQ(A.Sojourn.P50, B.Sojourn.P50);
  EXPECT_EQ(A.Sojourn.P99, B.Sojourn.P99);
  EXPECT_EQ(A.Sojourn.Max, B.Sojourn.Max);
}

TEST(ServeTest, StormBackpressureChargesVictimAndAggressor) {
  ServeOptions Opt = twoTenants(LightStorm);
  ServeResult R = runServe(Opt);
  ASSERT_TRUE(R.ConfigOk) << R.Error;
  ASSERT_EQ(R.Tenants.size(), 2u);
  const TenantServeResult &Victim = R.Tenants[0];
  const TenantServeResult &Aggressor = R.Tenants[1];

  // The storm stays on the aggressor's shard; the spillover is the
  // *shared* failure buffer, and it is billed as stalls, not failures.
  EXPECT_TRUE(Victim.AuditPassed);
  EXPECT_TRUE(Aggressor.AuditPassed);
  EXPECT_EQ(Victim.FailedLinesDynamic, 0u);
  EXPECT_GT(Aggressor.FailedLinesDynamic, 0u);
  EXPECT_GT(Victim.StallsObserved, 0u);
  EXPECT_EQ(Victim.StallsObserved, Aggressor.StallsInflicted);
  EXPECT_EQ(Victim.StallsInflicted, 0u);
  EXPECT_GT(R.BufferPeak, 0u);

  // Interference accounting is deterministic: a rerun reproduces every
  // counter bit-for-bit.
  ServeResult R2 = runServe(Opt);
  ASSERT_TRUE(R2.ConfigOk);
  for (size_t T = 0; T != R.Tenants.size(); ++T)
    expectSameTenant(R.Tenants[T], R2.Tenants[T]);
  EXPECT_EQ(R.BufferPeak, R2.BufferPeak);
  EXPECT_EQ(R.Rebalances, R2.Rebalances);
}

TEST(ServeTest, EmergencyNeighborDoesNotPerturbQuietShard) {
  // Heavy storm against a half carve: the aggressor's dynamic
  // failed-line fraction crosses the Emergency threshold and its
  // arrivals start bouncing off admission control.
  ServeOptions Noisy = twoTenants(HeavyStorm, /*NeighborBudgetScale=*/0.5);
  Noisy.DurationSec = 0.4;
  ServeResult WithStorm = runServe(Noisy);
  ASSERT_TRUE(WithStorm.ConfigOk) << WithStorm.Error;
  const TenantServeResult &Storm = WithStorm.Tenants[1];
  EXPECT_EQ(Storm.FinalMode, "emergency");
  EXPECT_GT(Storm.Rejected[RejEmergency], 0u);
  EXPECT_TRUE(Storm.AuditPassed);

  // The quiet shard's entire deterministic output - digest included -
  // is invariant to whether the neighbor idles or collapses.
  ServeOptions Alone = twoTenants("");
  Alone.DurationSec = 0.4;
  ServeResult NoStorm = runServe(Alone);
  ASSERT_TRUE(NoStorm.ConfigOk) << NoStorm.Error;
  EXPECT_EQ(WithStorm.Tenants[0].FinalMode, "normal");
  expectSameTenant(WithStorm.Tenants[0], NoStorm.Tenants[0]);
}

TEST(ServeTest, StarvedQuotaWindowRejectsUnderBothPolicies) {
  // xalan's large-array mix allocates through the LOS on perfect pages,
  // so a 2-page window is actually consumed and then rejects.
  for (QuotaPolicy Policy :
       {QuotaPolicy::StaticQuota, QuotaPolicy::DemandWeighted}) {
    ServeOptions Opt;
    Opt.Tenants.resize(2);
    for (TenantSpec &T : Opt.Tenants)
      T.ProfileName = "xalan";
    Opt.ArrivalRatePerSec = 3000.0;
    Opt.DurationSec = 0.15;
    Opt.Policy = Policy;
    Opt.Seed = 11;
    Opt.HeapFactor = 1.5;
    Opt.Dir.PerfectPagesPerWindow = 2;
    ServeResult R = runServe(Opt);
    ASSERT_TRUE(R.ConfigOk) << R.Error;
    uint64_t QuotaRejects = 0;
    uint64_t Charged = 0;
    for (const TenantServeResult &T : R.Tenants) {
      QuotaRejects += T.Rejected[RejQuota];
      Charged += T.PerfectPagesCharged;
      EXPECT_EQ(T.Rejected[RejQuota], T.QuotaRejections);
      EXPECT_EQ(T.Arrivals, T.Admitted + totalRejected(T));
    }
    EXPECT_GT(QuotaRejects, 0u) << quotaPolicyName(Policy);
    EXPECT_GT(Charged, 0u) << quotaPolicyName(Policy);

    ServeResult R2 = runServe(Opt);
    ASSERT_TRUE(R2.ConfigOk);
    for (size_t T = 0; T != R.Tenants.size(); ++T)
      expectSameTenant(R.Tenants[T], R2.Tenants[T]);
  }
}

TEST(ServeTest, StaticSharesSplitTheWindowEvenly) {
  ServeOptions Opt = twoTenants("");
  Opt.Tenants.resize(3);
  Opt.Dir.PerfectPagesPerWindow = 96;
  ServeResult R = runServe(Opt);
  ASSERT_TRUE(R.ConfigOk) << R.Error;
  for (const TenantServeResult &T : R.Tenants)
    EXPECT_EQ(T.QuotaShareFinal, 32u);
}

TEST(ServeTest, TinyQueueShedsWithTypedRejections) {
  ServeOptions Opt = twoTenants("");
  Opt.QueueDepth = 1;
  Opt.ArrivalRatePerSec = 20000.0;
  Opt.DurationSec = 0.1;
  ServeResult R = runServe(Opt);
  ASSERT_TRUE(R.ConfigOk) << R.Error;
  for (const TenantServeResult &T : R.Tenants) {
    EXPECT_GT(T.Rejected[RejQueueFull], 0u);
    // Conservation: every arrival is admitted or carries exactly one
    // typed rejection, and every admitted request is eventually served
    // by the post-horizon drain.
    EXPECT_EQ(T.Arrivals, T.Admitted + totalRejected(T));
    EXPECT_EQ(T.Served, T.Admitted);
    EXPECT_TRUE(T.AuditPassed);
  }
}

TEST(ServeTest, MisconfigurationIsAnErrorNotACrash) {
  ServeOptions NoTenants;
  EXPECT_FALSE(runServe(NoTenants).ConfigOk);

  ServeOptions BadProfile = twoTenants("");
  BadProfile.Tenants[0].ProfileName = "no-such-profile";
  ServeResult R = runServe(BadProfile);
  EXPECT_FALSE(R.ConfigOk);
  EXPECT_NE(R.Error.find("no-such-profile"), std::string::npos);

  ServeOptions BadCampaign = twoTenants("storm@nonsense");
  EXPECT_FALSE(runServe(BadCampaign).ConfigOk);
}

} // namespace
