//===- tests/MetadataJournalTest.cpp - Metadata WAL tests -----------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "os/MetadataJournal.h"

#include <gtest/gtest.h>

using namespace wearmem;

namespace {

constexpr size_t TestPages = 8;
constexpr size_t TestLines = TestPages * PcmLinesPerPage;

std::shared_ptr<DurableState> freshState() {
  auto DS = std::make_shared<DurableState>();
  DS->DeviceTruth = FailureMap(TestLines);
  DS->Baseline = DS->DeviceTruth;
  return DS;
}

} // namespace

TEST(MetadataJournalTest, RecordRoundtrip) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(3, 17);
  J.recordLedgerEntry(3, 17);
  J.recordClusterRemap(2, 41, true);
  J.recordPoolTransition(PoolTransitionKind::DramBorrow, 5);

  JournalScan Scan = J.scan();
  EXPECT_EQ(Scan.TornTailBytes, 0u);
  EXPECT_EQ(Scan.ChecksumFailures, 0u);
  ASSERT_EQ(Scan.Records.size(), 4u);

  EXPECT_EQ(Scan.Records[0].Kind, JournalKind::FailureMapUpdate);
  EXPECT_EQ(Scan.Records[0].A, 3u);
  EXPECT_EQ(Scan.Records[0].Arg16, 17u);
  EXPECT_EQ(Scan.Records[1].Kind, JournalKind::LedgerEntry);
  EXPECT_EQ(Scan.Records[2].Kind, JournalKind::ClusterRemap);
  EXPECT_EQ(Scan.Records[2].A, 2u);
  EXPECT_EQ(Scan.Records[2].Arg16, 41u);
  EXPECT_EQ(Scan.Records[2].B, 1u);
  EXPECT_EQ(Scan.Records[3].Kind, JournalKind::PoolTransition);
  EXPECT_EQ(Scan.Records[3].Arg16,
            static_cast<uint16_t>(PoolTransitionKind::DramBorrow));
  EXPECT_EQ(Scan.Records[3].A, 5u);

  // Device truth moved before the append.
  EXPECT_TRUE(DS->DeviceTruth.isFailed(3 * PcmLinesPerPage + 17));
}

TEST(MetadataJournalTest, ReplayRebuildsFailureView) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(0, 1);
  J.recordLineFailure(5, 63);
  J.recordLedgerEntry(5, 63);

  ReconcileResult Rec =
      reconcileJournal(J.scan(), DS->Baseline, DS->DeviceTruth);
  EXPECT_EQ(Rec.RecordsReplayed, 3u);
  EXPECT_EQ(Rec.LedgerEntries, 1u);
  EXPECT_EQ(Rec.JournalOnlyLines, 0u);
  EXPECT_EQ(Rec.DeviceOnlyLines, 0u);
  EXPECT_TRUE(Rec.JournalView.isFailed(1));
  EXPECT_TRUE(Rec.JournalView.isFailed(5 * PcmLinesPerPage + 63));
  EXPECT_TRUE(Rec.Reconciled == DS->DeviceTruth);
}

// Satellite: truncate the journal at every byte offset of the last record.
// Whatever the tear length, only the torn record is dropped, every earlier
// record replays, and the divergence count stays zero (the lost line comes
// back from the device rescan as a device-only adoption).
TEST(MetadataJournalTest, TornTailAtEveryByteOffset) {
  for (size_t Keep = 0; Keep != MetadataJournal::RecordSize; ++Keep) {
    auto DS = freshState();
    MetadataJournal J(DS);
    J.recordLineFailure(1, 10);
    J.recordLineFailure(2, 20);
    J.recordLineFailure(4, 40); // the record that will tear

    std::vector<uint8_t> Bytes = DS->Journal;
    ASSERT_EQ(Bytes.size(), 3 * MetadataJournal::RecordSize);
    Bytes.resize(2 * MetadataJournal::RecordSize + Keep);

    JournalScan Scan = MetadataJournal::scanBytes(Bytes);
    EXPECT_EQ(Scan.Records.size(), 2u) << "keep=" << Keep;
    EXPECT_EQ(Scan.TornTailBytes, Keep) << "keep=" << Keep;
    EXPECT_EQ(Scan.TornRecords, Keep == 0 ? 0u : 1u);
    EXPECT_EQ(Scan.ChecksumFailures, 0u) << "keep=" << Keep;

    ReconcileResult Rec =
        reconcileJournal(Scan, DS->Baseline, DS->DeviceTruth);
    EXPECT_EQ(Scan.ChecksumFailures + Rec.JournalOnlyLines, 0u)
        << "keep=" << Keep;
    // The torn line was lost from the journal but the device knows it.
    EXPECT_EQ(Rec.DeviceOnlyLines, 1u) << "keep=" << Keep;
    EXPECT_TRUE(Rec.Reconciled.isFailed(4 * PcmLinesPerPage + 40));
    EXPECT_FALSE(Rec.JournalView.isFailed(4 * PcmLinesPerPage + 40));
  }
}

// A corrupted record is checksum-detected, skipped, and counted as a
// divergence - never silently applied.
TEST(MetadataJournalTest, CorruptedRecordDetectedNotApplied) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(1, 10);
  J.recordLineFailure(2, 20);
  J.recordLineFailure(3, 30);

  // Flip the page argument of the middle record without fixing its
  // checksum: the journal now "claims" a failure on page 7.
  DS->Journal[MetadataJournal::RecordSize + 4] = 7;

  JournalScan Scan = J.scan();
  EXPECT_EQ(Scan.ChecksumFailures, 1u);
  ASSERT_EQ(Scan.Records.size(), 2u);

  ReconcileResult Rec =
      reconcileJournal(Scan, DS->Baseline, DS->DeviceTruth);
  EXPECT_FALSE(Rec.JournalView.isFailed(7 * PcmLinesPerPage + 20));
  EXPECT_FALSE(Rec.Reconciled.isFailed(7 * PcmLinesPerPage + 20));
  // Scanner resynchronised: the record after the corrupt one replayed.
  EXPECT_TRUE(Rec.JournalView.isFailed(3 * PcmLinesPerPage + 30));
  // The divergence policy counts the checksum failure.
  EXPECT_EQ(Scan.ChecksumFailures + Rec.JournalOnlyLines, 1u);
  // Device truth (written before the corrupted append) still recovers
  // the real line.
  EXPECT_TRUE(Rec.Reconciled.isFailed(2 * PcmLinesPerPage + 20));
}

// The checksum is seeded with the cell index, so a bitwise-intact record
// copied into a different slot fails verification.
TEST(MetadataJournalTest, MisplacedRecordFailsChecksum) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(1, 10);
  J.recordLineFailure(2, 20);

  constexpr size_t R = MetadataJournal::RecordSize;
  std::vector<uint8_t> Swapped = DS->Journal;
  for (size_t I = 0; I != R; ++I)
    std::swap(Swapped[I], Swapped[R + I]);

  JournalScan Scan = MetadataJournal::scanBytes(Swapped);
  EXPECT_EQ(Scan.Records.size(), 0u);
  EXPECT_EQ(Scan.ChecksumFailures, 2u);
}

// Journal-only claims (device rescan denies them) are divergences and are
// dropped from the recovered map.
TEST(MetadataJournalTest, JournalOnlyLineIsDivergence) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(1, 10);
  // Simulate a stale journal claim: the device no longer confirms it.
  DS->DeviceTruth.clear(1 * PcmLinesPerPage + 10);

  ReconcileResult Rec =
      reconcileJournal(J.scan(), DS->Baseline, DS->DeviceTruth);
  EXPECT_EQ(Rec.JournalOnlyLines, 1u);
  EXPECT_FALSE(Rec.Reconciled.isFailed(1 * PcmLinesPerPage + 10));
}

// A PageRemap transition voids the page's earlier failure records in the
// journal's view, matching the cleared device truth.
TEST(MetadataJournalTest, PageRemapClearsJournalView) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(2, 5);
  J.recordLineFailure(2, 6);
  J.recordPageRemap(2);

  ReconcileResult Rec =
      reconcileJournal(J.scan(), DS->Baseline, DS->DeviceTruth);
  EXPECT_FALSE(Rec.JournalView.isFailed(2 * PcmLinesPerPage + 5));
  EXPECT_FALSE(Rec.JournalView.isFailed(2 * PcmLinesPerPage + 6));
  EXPECT_EQ(Rec.JournalOnlyLines, 0u);
  EXPECT_EQ(Rec.PoolTransitions, 1u);
  EXPECT_FALSE(DS->DeviceTruth.isFailed(2 * PcmLinesPerPage + 5));
}

// An armed JournalAppend kill point tears the in-flight record and throws;
// the torn tail is detected on the next scan.
TEST(MetadataJournalTest, ArmedAppendTearsRecord) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(1, 1);
  J.armCrash(CrashPoint::JournalAppend);
  EXPECT_THROW(J.recordLineFailure(2, 2), CrashSignal);
  EXPECT_FALSE(J.crashArmed());
  EXPECT_EQ(DS->Crashes, 1u);

  JournalScan Scan = J.scan();
  EXPECT_EQ(Scan.Records.size(), 1u);
  EXPECT_EQ(Scan.TornRecords, 1u);
  EXPECT_GT(Scan.TornTailBytes, 0u);
  EXPECT_LT(Scan.TornTailBytes, MetadataJournal::RecordSize);
  // Device truth committed before the torn append.
  EXPECT_TRUE(DS->DeviceTruth.isFailed(2 * PcmLinesPerPage + 2));
}

TEST(MetadataJournalTest, CrashPointOnlyFiresWhenArmed) {
  auto DS = freshState();
  MetadataJournal J(DS);
  EXPECT_NO_THROW(J.crashPoint(CrashPoint::Remap));
  J.armCrash(CrashPoint::Remap);
  EXPECT_NO_THROW(J.crashPoint(CrashPoint::InterruptUpcall));
  EXPECT_THROW(J.crashPoint(CrashPoint::Remap), CrashSignal);
  // The arm is consumed by firing.
  EXPECT_NO_THROW(J.crashPoint(CrashPoint::Remap));
}

TEST(MetadataJournalTest, CompactResetsBaselineAndJournal) {
  auto DS = freshState();
  MetadataJournal J(DS);
  J.recordLineFailure(4, 8);
  ReconcileResult Rec =
      reconcileJournal(J.scan(), DS->Baseline, DS->DeviceTruth);
  J.compact(Rec.Reconciled);

  EXPECT_EQ(J.sizeBytes(), 0u);
  EXPECT_TRUE(DS->Baseline == Rec.Reconciled);
  EXPECT_TRUE(DS->DeviceTruth == Rec.Reconciled);
  // A fresh scan over the compacted journal replays nothing but the
  // baseline already carries the failure.
  ReconcileResult Again =
      reconcileJournal(J.scan(), DS->Baseline, DS->DeviceTruth);
  EXPECT_EQ(Again.RecordsReplayed, 0u);
  EXPECT_TRUE(Again.Reconciled.isFailed(4 * PcmLinesPerPage + 8));
}
