//===- tests/HeapGcTest.cpp - Collector correctness tests -----------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Parameterized over the four collectors of Figure 3 (MS, IX, S-MS,
// S-IX): liveness, reclamation, moving-collector transparency, write
// barriers, pinning, and epoch-wrap behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <vector>

using namespace wearmem;

namespace {

RuntimeConfig baseConfig(CollectorKind Kind, size_t HeapBytes = 8 * MiB) {
  RuntimeConfig Config;
  Config.Collector = Kind;
  Config.HeapBytes = HeapBytes;
  return Config;
}

uint64_t &payloadWord(ObjRef Obj) {
  return *reinterpret_cast<uint64_t *>(objectPayload(Obj));
}

} // namespace

class CollectorTest : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(CollectorTest, LinkedListSurvivesCollections) {
  Runtime Rt(baseConfig(GetParam()));
  constexpr unsigned N = 20000;
  Handle Head = Rt.allocateRooted(8, 1);
  ASSERT_NE(Head.get(), nullptr);
  payloadWord(Head.get()) = 0;
  for (unsigned I = 1; I != N; ++I) {
    ObjRef Node = Rt.allocate(8, 1);
    ASSERT_NE(Node, nullptr);
    payloadWord(Node) = I;
    Rt.writeRef(Node, 0, Head.get());
    Head.set(Node);
  }
  Rt.collect(true);
  Rt.collect(false);
  Rt.collect(true);

  unsigned Count = 0;
  uint64_t Expect = N - 1;
  for (ObjRef Node = Head.get(); Node;
       Node = Runtime::readRef(Node, 0), --Expect) {
    ASSERT_EQ(payloadWord(Node), Expect);
    ++Count;
  }
  EXPECT_EQ(Count, N);
  Rt.heap().verifyIntegrity();
}

TEST_P(CollectorTest, GarbageIsReclaimed) {
  Runtime Rt(baseConfig(GetParam(), 4 * MiB));
  // Allocate far more than the heap without retaining anything: only
  // reclamation lets this complete.
  for (int I = 0; I != 200000; ++I)
    ASSERT_NE(Rt.allocate(48, 2), nullptr) << "iteration " << I;
  EXPECT_FALSE(Rt.outOfMemory());
  EXPECT_GT(Rt.stats().GcCount, 0u);
}

TEST_P(CollectorTest, OutOfMemoryOnLiveOverflow) {
  Runtime Rt(baseConfig(GetParam(), 2 * MiB));
  // Retain everything: a 2 MiB heap cannot hold 4 MiB of live data.
  std::vector<Handle> Handles;
  bool SawNull = false;
  for (int I = 0; I != 40000; ++I) {
    ObjRef Obj = Rt.allocate(96, 1);
    if (!Obj) {
      SawNull = true;
      break;
    }
    Handles.push_back(Handle(Rt, Obj));
  }
  EXPECT_TRUE(SawNull);
  EXPECT_TRUE(Rt.outOfMemory());
}

TEST_P(CollectorTest, ObjectGraphWithMutationStaysConsistent) {
  Runtime Rt(baseConfig(GetParam()));
  Rng Rand(2024);
  // A web of objects with random re-linking; checksums in payloads.
  constexpr unsigned N = 400;
  Handle Table = Rt.allocateRooted(0, N);
  ASSERT_NE(Table.get(), nullptr);
  for (unsigned I = 0; I != N; ++I) {
    ObjRef Obj = Rt.allocate(16, 3);
    ASSERT_NE(Obj, nullptr);
    payloadWord(Obj) = I * 31;
    Rt.writeRef(Table.get(), I, Obj);
  }
  for (int Round = 0; Round != 30; ++Round) {
    // Random mutations (exercises the sticky barrier).
    for (int M = 0; M != 200; ++M) {
      ObjRef Src =
          Runtime::readRef(Table.get(), Rand.nextBelow(N));
      ObjRef Dst =
          Runtime::readRef(Table.get(), Rand.nextBelow(N));
      Rt.writeRef(Src, Rand.nextBelow(3), Dst);
    }
    // Garbage pressure.
    for (int A = 0; A != 2000; ++A)
      ASSERT_NE(Rt.allocate(Rand.nextBool(0.1) ? 600 : 40, 1), nullptr);
    if (Round % 7 == 0)
      Rt.collect(Round % 14 == 0);
    // Verify all checksums.
    for (unsigned I = 0; I != N; ++I) {
      ObjRef Obj = Runtime::readRef(Table.get(), I);
      ASSERT_EQ(payloadWord(Obj), I * 31) << "round " << Round;
    }
    Rt.heap().verifyIntegrity();
  }
}

TEST_P(CollectorTest, LargeObjectsSurviveAndDie) {
  Runtime Rt(baseConfig(GetParam()));
  Handle Keeper = Rt.allocateRooted(64 * KiB, 2);
  ASSERT_NE(Keeper.get(), nullptr);
  EXPECT_TRUE(objectHasFlag(Keeper.get(), FlagLarge));
  payloadWord(Keeper.get()) = 0xFEEDFACE;
  size_t PagesWithLive = Rt.heap().largeObjectSpace().pagesHeld();

  // Unreferenced large objects churn through the LOS.
  for (int I = 0; I != 200; ++I)
    ASSERT_NE(Rt.allocate(32 * KiB, 0), nullptr);
  Rt.collect(true);
  EXPECT_EQ(payloadWord(Keeper.get()), 0xFEEDFACEu);
  EXPECT_LE(Rt.heap().largeObjectSpace().pagesHeld(), PagesWithLive + 16);
}

TEST_P(CollectorTest, RootHandlesFollowMoves) {
  Runtime Rt(baseConfig(GetParam()));
  std::vector<Handle> Handles;
  for (int I = 0; I != 100; ++I) {
    ObjRef Obj = Rt.allocate(8, 0);
    ASSERT_NE(Obj, nullptr);
    payloadWord(Obj) = I;
    Handles.push_back(Handle(Rt, Obj));
  }
  for (int GC = 0; GC != 4; ++GC)
    Rt.collect(GC % 2 == 0);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(payloadWord(Handles[I].get()), static_cast<uint64_t>(I));
}

TEST_P(CollectorTest, ManyFullCollectionsSurviveEpochWrap) {
  // Regression test: MaxEpoch is 250; the wrap at the 250th full
  // collection once let the evacuation allocator overwrite live data.
  Runtime Rt(baseConfig(GetParam(), 4 * MiB));
  Handle Keep = Rt.allocateRooted(8, 1);
  ASSERT_NE(Keep.get(), nullptr);
  payloadWord(Keep.get()) = 0xABCD;
  for (int I = 0; I != 300; ++I) {
    // Some churn so collections have work to do.
    for (int A = 0; A != 300; ++A)
      ASSERT_NE(Rt.allocate(40, 1), nullptr);
    Rt.collect(true);
    ASSERT_EQ(payloadWord(Keep.get()), 0xABCDu) << "full GC " << I;
  }
  EXPECT_GE(Rt.stats().FullGcCount, 300u);
  Rt.heap().verifyIntegrity();
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, CollectorTest,
    ::testing::Values(CollectorKind::MarkSweep, CollectorKind::Immix,
                      CollectorKind::StickyMarkSweep,
                      CollectorKind::StickyImmix),
    [](const ::testing::TestParamInfo<CollectorKind> &Info) {
      switch (Info.param) {
      case CollectorKind::MarkSweep:
        return "MS";
      case CollectorKind::Immix:
        return "IX";
      case CollectorKind::StickyMarkSweep:
        return "SMS";
      case CollectorKind::StickyImmix:
        return "SIX";
      }
      return "unknown";
    });

//===----------------------------------------------------------------------===//
// Sticky-specific behaviour
//===----------------------------------------------------------------------===//

TEST(StickyTest, OldToYoungReferenceSurvivesNurseryGc) {
  RuntimeConfig Config = baseConfig(CollectorKind::StickyImmix);
  Runtime Rt(Config);
  Handle Old = Rt.allocateRooted(8, 1);
  ASSERT_NE(Old.get(), nullptr);
  // Make it old: a full collection marks it.
  Rt.collect(true);
  // Mutate the old object to point at a brand-new object; only the write
  // barrier's log can keep the young object alive across a nursery GC
  // (the old object is not re-traced).
  ObjRef Young = Rt.allocate(8, 0);
  ASSERT_NE(Young, nullptr);
  payloadWord(Young) = 777;
  Rt.writeRef(Old.get(), 0, Young);
  EXPECT_GT(Rt.stats().WriteBarrierLogs, 0u);

  Rt.collect(false); // Nursery.
  ObjRef Fetched = Runtime::readRef(Old.get(), 0);
  ASSERT_NE(Fetched, nullptr);
  EXPECT_EQ(payloadWord(Fetched), 777u);
  Rt.heap().verifyIntegrity();
}

TEST(StickyTest, NurseryGcDoesNotCollectOldObjects) {
  Runtime Rt(baseConfig(CollectorKind::StickyImmix));
  Handle Old = Rt.allocateRooted(8, 0);
  payloadWord(Old.get()) = 31337;
  Rt.collect(true);
  uint64_t FullBefore = Rt.stats().FullGcCount;
  Rt.collect(false);
  EXPECT_EQ(payloadWord(Old.get()), 31337u);
  // The nursery collection must not have escalated here (ample heap).
  EXPECT_EQ(Rt.stats().FullGcCount, FullBefore);
  EXPECT_GT(Rt.stats().NurseryGcCount, 0u);
}

TEST(StickyTest, NurserySurvivorsAreCopied) {
  Runtime Rt(baseConfig(CollectorKind::StickyImmix));
  Handle Kept = Rt.allocateRooted(8, 0);
  ObjRef Before = Kept.get();
  Rt.collect(false);
  // Sticky Immix opportunistically copies nursery survivors.
  EXPECT_NE(Kept.get(), Before);
  EXPECT_GT(Rt.stats().ObjectsEvacuated, 0u);
}

TEST(StickyTest, RelocatedLargeObjectKeepsWriteBarrierLive) {
  // Regression: LOS relocation memcpys the whole header, FlagLogged
  // included. The mutation-log entry used to keep pointing at the husk,
  // so the full collection inside injectDynamicFailureOnLarge cleared
  // the husk's flag while the live copy kept a set flag with no log
  // entry - permanently disabling its write barrier and making a later
  // old-to-young store invisible to nursery collections.
  Runtime Rt(baseConfig(CollectorKind::StickyImmix));
  Handle Large = Rt.allocateRooted(8 * KiB, 1);
  ASSERT_NE(Large.get(), nullptr);
  ASSERT_TRUE(objectHasFlag(Large.get(), FlagLarge));
  Rt.collect(true); // Make it old.
  // Mutating the old object logs it (FlagLogged + mutation buffer).
  Rt.writeRef(Large.get(), 0, nullptr);
  ASSERT_TRUE(objectHasFlag(Large.get(), FlagLogged));

  ObjRef Before = Large.get();
  Rt.heap().injectDynamicFailureOnLarge(Large.get());
  ObjRef After = Large.get();
  ASSERT_NE(After, nullptr);
  EXPECT_NE(After, Before) << "failure on a movable large object must relocate";
  // The internal full collection drained the log; a surviving set flag
  // on the copy would be exactly the stale state this test guards.
  EXPECT_FALSE(objectHasFlag(After, FlagLogged));

  ObjRef Young = Rt.allocate(8, 0);
  ASSERT_NE(Young, nullptr);
  payloadWord(Young) = 424242;
  Rt.writeRef(After, 0, Young);
  Rt.collect(false); // Nursery: only the barrier log keeps Young alive.
  ObjRef Fetched = Runtime::readRef(Large.get(), 0);
  ASSERT_NE(Fetched, nullptr);
  EXPECT_EQ(payloadWord(Fetched), 424242u);
  Rt.heap().verifyIntegrity();
}

//===----------------------------------------------------------------------===//
// Pinning
//===----------------------------------------------------------------------===//

TEST(PinningTest, PinnedObjectsNeverMove) {
  Runtime Rt(baseConfig(CollectorKind::StickyImmix));
  Handle Pinned = Rt.allocateRooted(8, 0, /*Pinned=*/true);
  Handle Movable = Rt.allocateRooted(8, 0);
  ObjRef PinnedBefore = Pinned.get();
  payloadWord(Pinned.get()) = 55;
  for (int I = 0; I != 5; ++I)
    Rt.collect(I % 2 == 0);
  EXPECT_EQ(Pinned.get(), PinnedBefore);
  EXPECT_EQ(payloadWord(Pinned.get()), 55u);
  (void)Movable;
}
