//===- tests/DegradationLadderTest.cpp - Capacity-pressure ladder tests ---===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The degradation ladder (Normal -> Throttled -> Emergency -> FailStop)
// and the fail-stop diagnosis behind it: every way the heap can give up
// must surface the matching DnfReason, every escalation must walk the
// rungs in order, and Emergency must refuse page-hungry allocations
// with a typed error instead of crashing or burning the last capacity.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace wearmem;

namespace {

RuntimeConfig testConfig() {
  RuntimeConfig Config;
  Config.HeapBytes = 4 * MiB;
  Config.Seed = 0x1ADDE4;
  return Config;
}

std::vector<Handle> populate(Runtime &Rt, size_t Bytes) {
  std::vector<Handle> Roots;
  for (size_t Allocated = 0; Allocated < Bytes; Allocated += 80) {
    Roots.push_back(Rt.allocateRooted(48, 2));
    EXPECT_NE(Roots.back().get(), nullptr);
  }
  return Roots;
}

/// Fails the lines under one contiguous span of live roots through the
/// ordinary dynamic-failure interrupt path. Re-reads every handle so the
/// batch stays valid across the evacuating recovery collections earlier
/// batches trigger.
void failSpan(Runtime &Rt, std::vector<Handle> &Roots, size_t Begin,
              size_t End) {
  std::vector<uint8_t *> Addrs;
  for (size_t I = Begin; I < End && I < Roots.size(); ++I)
    if (uint8_t *P = Roots[I].get())
      Addrs.push_back(P);
  Rt.heap().injectDynamicFailureBatch(Addrs, /*DeferRecovery=*/true);
}

} // namespace

TEST(DegradationLadderTest, HealthyHeapStaysNormal) {
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB);
  Rt.collect(true);

  EXPECT_EQ(Rt.heap().degradationMode(), DegradationMode::Normal);
  EXPECT_EQ(Rt.heap().computeDegradationMode(), DegradationMode::Normal);
  EXPECT_EQ(Rt.heap().dnfReason(), DnfReason::None);
  EXPECT_TRUE(Rt.heap().degradationLog().empty());
  EXPECT_EQ(Rt.stats().DegradationTransitions, 0u);
}

TEST(DegradationLadderTest, DynamicWearWalksTheRungsInOrder) {
  RuntimeConfig Config = testConfig();
  // A lower storm ceiling widens each rung's window (Throttled arms at a
  // quarter of it, Emergency at half), so small failure batches cannot
  // hop over a rung.
  Config.StormOverloadFraction = 0.4;
  Runtime Rt(Config);
  auto Roots = populate(Rt, 3 * MiB / 2);
  Rt.collect(true);

  std::vector<DegradationMode> Seen = {Rt.heap().degradationMode()};
  for (size_t I = 0; I < Roots.size() &&
                     Rt.heap().degradationMode() < DegradationMode::Emergency;
       I += 192) {
    failSpan(Rt, Roots, I, I + 192);
    if (Rt.heap().degradationMode() != Seen.back())
      Seen.push_back(Rt.heap().degradationMode());
  }

  ASSERT_EQ(Seen.size(), 3u) << "expected Normal -> Throttled -> Emergency";
  EXPECT_EQ(Seen[0], DegradationMode::Normal);
  EXPECT_EQ(Seen[1], DegradationMode::Throttled);
  EXPECT_EQ(Seen[2], DegradationMode::Emergency);

  // The transition log must tell the same story: every non-recovery
  // transition escalates, and the count matches the stats counter.
  const std::vector<DegradationTransition> &Log = Rt.heap().degradationLog();
  ASSERT_GE(Log.size(), 2u);
  for (const DegradationTransition &T : Log) {
    if (!T.Recovery) {
      EXPECT_LT(T.From, T.To);
    }
  }
  EXPECT_EQ(Rt.stats().DegradationTransitions,
            Log.size() + Rt.heap().degradationLogDropped());
}

TEST(DegradationLadderTest, EmergencyRefusesPageHungryAllocationsTyped) {
  RuntimeConfig Config = testConfig();
  Config.StormOverloadFraction = 0.4;
  Runtime Rt(Config);
  auto Roots = populate(Rt, 3 * MiB / 2);
  Rt.collect(true);
  for (size_t I = 0; I < Roots.size() &&
                     Rt.heap().degradationMode() < DegradationMode::Emergency;
       I += 192)
    failSpan(Rt, Roots, I, I + 192);
  ASSERT_EQ(Rt.heap().degradationMode(), DegradationMode::Emergency);

  // A medium overflow request (multi-line, below the LOS threshold) is
  // refused with a typed error: no crash, no OutOfMemory, no DnfReason.
  EXPECT_EQ(Rt.heap().allocate(600, 0), nullptr);
  EXPECT_EQ(Rt.heap().lastRefusal(), AllocRefusal::EmergencyMedium);
  EXPECT_EQ(Rt.stats().RefusedMediumAllocs, 1u);

  // Same for a large-object request.
  EXPECT_EQ(Rt.heap().allocate(16 * KiB, 0), nullptr);
  EXPECT_EQ(Rt.heap().lastRefusal(), AllocRefusal::EmergencyLarge);
  EXPECT_EQ(Rt.stats().RefusedLargeAllocs, 1u);

  EXPECT_FALSE(Rt.heap().outOfMemory());
  EXPECT_EQ(Rt.heap().dnfReason(), DnfReason::None);

  // Small allocations are still admitted, and success clears the typed
  // refusal marker.
  EXPECT_NE(Rt.heap().allocate(48, 0), nullptr);
  EXPECT_EQ(Rt.heap().lastRefusal(), AllocRefusal::None);
}

TEST(DegradationLadderTest, StormOverloadDiagnosedAtFailStop) {
  RuntimeConfig Config = testConfig();
  Config.StormOverloadFraction = 0.2;
  Runtime Rt(Config);
  auto Roots = populate(Rt, MiB);
  Rt.collect(true);

  // Fail well past the storm ceiling (evacuations relocate survivors to
  // fresh lines, so repeated sweeps over the same roots keep retiring
  // new lines), then drive small allocations until the heap gives up.
  size_t TotalLines = 0;
  Rt.heap().immixSpace()->forEachBlock(
      [&](const Block &B) { TotalLines += B.lineCount(); });
  for (int Sweep = 0; Sweep != 4 && !Rt.heap().outOfMemory() &&
                      Rt.stats().FailedLinesDynamic < TotalLines / 4;
       ++Sweep)
    for (size_t I = 0; I < Roots.size() && !Rt.heap().outOfMemory();
         I += 192)
      failSpan(Rt, Roots, I, I + 192);

  // Grow the live set into what the storm left standing; the eventual
  // exhaustion must be blamed on the storm, not on the growth.
  for (int I = 0; I != 200000 && !Rt.heap().outOfMemory(); ++I)
    Roots.push_back(Rt.allocateRooted(48, 2));

  ASSERT_TRUE(Rt.heap().outOfMemory());
  EXPECT_EQ(Rt.heap().dnfReason(), DnfReason::FailureStormOverload);
  EXPECT_EQ(Rt.heap().degradationMode(), DegradationMode::FailStop);
  EXPECT_EQ(Rt.heap().computeDegradationMode(), DegradationMode::FailStop);
}

TEST(DegradationLadderTest, PlainExhaustionDiagnosedHeapExhausted) {
  RuntimeConfig Config = testConfig();
  Config.HeapBytes = 2 * MiB;
  Runtime Rt(Config);

  // No wear anywhere: growing the live set past the budget is ordinary
  // exhaustion, and must never be blamed on a storm or the perfect pool.
  std::vector<Handle> Roots;
  for (int I = 0; I != 200000 && !Rt.heap().outOfMemory(); ++I)
    Roots.push_back(Rt.allocateRooted(48, 2));

  ASSERT_TRUE(Rt.heap().outOfMemory());
  EXPECT_EQ(Rt.heap().dnfReason(), DnfReason::HeapExhausted);
  EXPECT_EQ(Rt.heap().degradationMode(), DegradationMode::FailStop);
  EXPECT_EQ(Rt.heap().computeDegradationMode(), DegradationMode::FailStop);
}

TEST(DegradationLadderTest, PerfectPoolExhaustionDiagnosed) {
  RuntimeConfig Config = testConfig();
  // Disarm every ladder rung so Emergency admission control never
  // intercepts the large requests: this test pins down classification
  // at the fail-stop site, not the ladder.
  Config.StormOverloadFraction = 1.1;
  Config.ThrottlePerfectFraction = 0.0;
  Config.EmergencyPerfectFraction = 0.0;
  Config.ThrottleRetiredBlocks = 1000000;
  Config.EmergencyRetiredFraction = 1.1;
  // Static failures make perfect pages scarce (a page is perfect only
  // if every line intook clean), and a tight DRAM debt cap stops
  // borrowing almost immediately - so the fussy pool runs dry while the
  // imperfect heap is still mostly empty.
  Config.FailureRate = 0.05;
  Config.MaxDebtPages = 2;
  Runtime Rt(Config);

  // Page-hungry (perfect-wanting) requests until the pool runs dry.
  std::vector<Handle> Roots;
  for (int I = 0; I != 4096 && !Rt.heap().outOfMemory(); ++I)
    Roots.push_back(Rt.allocateRooted(16 * KiB, 0));

  ASSERT_TRUE(Rt.heap().outOfMemory());
  EXPECT_EQ(Rt.heap().dnfReason(), DnfReason::PerfectPagesExhausted);
  EXPECT_EQ(Rt.heap().degradationMode(), DegradationMode::FailStop);
}

TEST(DegradationLadderTest, DiagnosticNamesAreStable) {
  // The JSON emitters and the CI greps key on these exact strings.
  EXPECT_STREQ(dnfReasonName(DnfReason::None), "none");
  EXPECT_STREQ(dnfReasonName(DnfReason::HeapExhausted), "heap-exhausted");
  EXPECT_STREQ(dnfReasonName(DnfReason::PerfectPagesExhausted),
               "perfect-pages-exhausted");
  EXPECT_STREQ(dnfReasonName(DnfReason::FailureStormOverload),
               "failure-storm-overload");
  EXPECT_STREQ(degradationModeName(DegradationMode::Normal), "normal");
  EXPECT_STREQ(degradationModeName(DegradationMode::Throttled),
               "throttled");
  EXPECT_STREQ(degradationModeName(DegradationMode::Emergency),
               "emergency");
  EXPECT_STREQ(degradationModeName(DegradationMode::FailStop),
               "fail-stop");
  EXPECT_STREQ(allocRefusalName(AllocRefusal::EmergencyLarge),
               "emergency-large");
  EXPECT_STREQ(allocRefusalName(AllocRefusal::EmergencyMedium),
               "emergency-medium");
}
