//===- tests/FailureBufferTest.cpp - Failure buffer unit tests ------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "pcm/FailureBuffer.h"
#include "pcm/PcmDevice.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace wearmem;

static FailureRecord makeRecord(PcmAddr LineAddr, uint8_t Fill) {
  FailureRecord Record;
  Record.LineAddr = LineAddr;
  Record.Data.fill(Fill);
  return Record;
}

TEST(FailureBufferTest, PushLookup) {
  FailureBuffer Buffer(8);
  EXPECT_TRUE(Buffer.empty());
  EXPECT_TRUE(Buffer.push(makeRecord(0, 0x11)));
  EXPECT_TRUE(Buffer.push(makeRecord(64, 0x22)));
  ASSERT_NE(Buffer.lookup(0), nullptr);
  EXPECT_EQ(Buffer.lookup(0)[0], 0x11);
  EXPECT_EQ(Buffer.lookup(64)[0], 0x22);
  EXPECT_EQ(Buffer.lookup(128), nullptr);
}

TEST(FailureBufferTest, SameAddressInvalidatesEarlier) {
  FailureBuffer Buffer(4);
  EXPECT_TRUE(Buffer.push(makeRecord(64, 0xAA)));
  EXPECT_TRUE(Buffer.push(makeRecord(64, 0xBB)));
  EXPECT_EQ(Buffer.size(), 1u);
  EXPECT_EQ(Buffer.lookup(64)[0], 0xBB);
}

TEST(FailureBufferTest, FifoOrder) {
  FailureBuffer Buffer(8);
  Buffer.push(makeRecord(0, 1));
  Buffer.push(makeRecord(64, 2));
  Buffer.push(makeRecord(128, 3));
  std::vector<FailureRecord> Pending = Buffer.pending();
  ASSERT_EQ(Pending.size(), 3u);
  EXPECT_EQ(Pending[0].LineAddr, 0u);
  EXPECT_EQ(Pending[1].LineAddr, 64u);
  EXPECT_EQ(Pending[2].LineAddr, 128u);
}

TEST(FailureBufferTest, Invalidate) {
  FailureBuffer Buffer(8);
  Buffer.push(makeRecord(64, 7));
  EXPECT_TRUE(Buffer.invalidate(64));
  EXPECT_FALSE(Buffer.invalidate(64));
  EXPECT_EQ(Buffer.lookup(64), nullptr);
  EXPECT_TRUE(Buffer.empty());
}

TEST(FailureBufferTest, NearFullWithDrainReserve) {
  FailureBuffer Buffer(4, /*DrainReserve=*/2);
  EXPECT_FALSE(Buffer.nearFull());
  Buffer.push(makeRecord(0, 0));
  EXPECT_FALSE(Buffer.nearFull());
  Buffer.push(makeRecord(64, 0));
  // 2 entries + 2 reserved = capacity: the stall threshold.
  EXPECT_TRUE(Buffer.nearFull());
  // The reserve still accepts the in-flight failures.
  EXPECT_TRUE(Buffer.push(makeRecord(128, 0)));
  EXPECT_TRUE(Buffer.push(makeRecord(192, 0)));
  // Completely full: data would be lost.
  EXPECT_FALSE(Buffer.push(makeRecord(256, 0)));
  EXPECT_EQ(Buffer.highWater(), 4u);
}

TEST(FailureBufferTest, HighWaterTracksPeak) {
  FailureBuffer Buffer(8);
  Buffer.push(makeRecord(0, 0));
  Buffer.push(makeRecord(64, 0));
  Buffer.invalidate(0);
  Buffer.invalidate(64);
  EXPECT_EQ(Buffer.size(), 0u);
  EXPECT_EQ(Buffer.highWater(), 2u);
}

TEST(FailureBufferTest, SaturatedBufferRefusesWithoutDroppingLatched) {
  // Fill every slot including the drain reserve, then verify the refusal
  // path loses nothing: all latched records stay pending, in FIFO order,
  // with their data intact.
  FailureBuffer Buffer(4, /*DrainReserve=*/2);
  for (unsigned I = 0; I != 4; ++I)
    ASSERT_TRUE(Buffer.push(makeRecord(I * 64, static_cast<uint8_t>(I))));
  EXPECT_FALSE(Buffer.push(makeRecord(512, 0xFF)));
  EXPECT_EQ(Buffer.size(), 4u);
  std::vector<FailureRecord> Pending = Buffer.pending();
  ASSERT_EQ(Pending.size(), 4u);
  for (unsigned I = 0; I != 4; ++I) {
    EXPECT_EQ(Pending[I].LineAddr, I * 64u);
    EXPECT_EQ(Pending[I].Data[0], I);
  }
  EXPECT_EQ(Buffer.lookup(512), nullptr);
}

//===----------------------------------------------------------------------===//
// Device-level saturation: the stall protocol end to end
//===----------------------------------------------------------------------===//

TEST(FailureBufferTest, DeviceStallProtocolUnderSaturation) {
  // A small buffer with no OS attached: failures accumulate until the
  // near-full threshold, after which the module must stall writes (and
  // raise the stall interrupt) rather than silently drop a record.
  PcmDeviceConfig Config;
  Config.NumPages = 4;
  Config.FailureBufferCapacity = 4; // Near-full at 2 with reserve 2.
  Config.MeanLineLifetime = 1000;
  Config.LifetimeVariation = 0.0;
  PcmDevice Device(Config);
  unsigned Stalls = 0;
  Device.setStallInterrupt([&Stalls] { ++Stalls; });

  uint8_t Data[PcmLineSize];
  std::memset(Data, 0xAB, sizeof(Data));
  for (LineIndex Line : {0u, 1u}) {
    Device.injectImminentFailure(Line);
    EXPECT_EQ(Device.writeLine(Line, Data), WriteResult::Ok);
  }
  EXPECT_TRUE(Device.failureBuffer().nearFull());

  // Saturated: writes stall, the interrupt fires, nothing is lost.
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Stalled);
  EXPECT_EQ(Stalls, 1u);
  EXPECT_EQ(Device.stats().StallEvents, 1u);
  EXPECT_EQ(Device.pendingFailures().size(), 2u);

  // Forced wear-outs honour the same protocol instead of overflowing.
  EXPECT_FALSE(Device.forceFailLine(6));
  EXPECT_EQ(Device.stats().ForcedFailures, 0u);
  EXPECT_EQ(Device.pendingFailures().size(), 2u);

  // Draining one entry re-enables writes; the surviving record still
  // forwards its latched data.
  EXPECT_TRUE(Device.clearBufferEntry(addrOfLine(0)));
  EXPECT_EQ(Device.writeLine(5, Data), WriteResult::Ok);
  uint8_t Out[PcmLineSize];
  Device.readLine(1, Out);
  EXPECT_EQ(Out[0], 0xAB);
  EXPECT_EQ(Device.stats().BufferForwardedReads, 1u);
}
