//===- tests/FailureBufferTest.cpp - Failure buffer unit tests ------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "pcm/FailureBuffer.h"

#include <gtest/gtest.h>

using namespace wearmem;

static FailureRecord makeRecord(PcmAddr LineAddr, uint8_t Fill) {
  FailureRecord Record;
  Record.LineAddr = LineAddr;
  Record.Data.fill(Fill);
  return Record;
}

TEST(FailureBufferTest, PushLookup) {
  FailureBuffer Buffer(8);
  EXPECT_TRUE(Buffer.empty());
  EXPECT_TRUE(Buffer.push(makeRecord(0, 0x11)));
  EXPECT_TRUE(Buffer.push(makeRecord(64, 0x22)));
  ASSERT_NE(Buffer.lookup(0), nullptr);
  EXPECT_EQ(Buffer.lookup(0)[0], 0x11);
  EXPECT_EQ(Buffer.lookup(64)[0], 0x22);
  EXPECT_EQ(Buffer.lookup(128), nullptr);
}

TEST(FailureBufferTest, SameAddressInvalidatesEarlier) {
  FailureBuffer Buffer(4);
  EXPECT_TRUE(Buffer.push(makeRecord(64, 0xAA)));
  EXPECT_TRUE(Buffer.push(makeRecord(64, 0xBB)));
  EXPECT_EQ(Buffer.size(), 1u);
  EXPECT_EQ(Buffer.lookup(64)[0], 0xBB);
}

TEST(FailureBufferTest, FifoOrder) {
  FailureBuffer Buffer(8);
  Buffer.push(makeRecord(0, 1));
  Buffer.push(makeRecord(64, 2));
  Buffer.push(makeRecord(128, 3));
  std::vector<FailureRecord> Pending = Buffer.pending();
  ASSERT_EQ(Pending.size(), 3u);
  EXPECT_EQ(Pending[0].LineAddr, 0u);
  EXPECT_EQ(Pending[1].LineAddr, 64u);
  EXPECT_EQ(Pending[2].LineAddr, 128u);
}

TEST(FailureBufferTest, Invalidate) {
  FailureBuffer Buffer(8);
  Buffer.push(makeRecord(64, 7));
  EXPECT_TRUE(Buffer.invalidate(64));
  EXPECT_FALSE(Buffer.invalidate(64));
  EXPECT_EQ(Buffer.lookup(64), nullptr);
  EXPECT_TRUE(Buffer.empty());
}

TEST(FailureBufferTest, NearFullWithDrainReserve) {
  FailureBuffer Buffer(4, /*DrainReserve=*/2);
  EXPECT_FALSE(Buffer.nearFull());
  Buffer.push(makeRecord(0, 0));
  EXPECT_FALSE(Buffer.nearFull());
  Buffer.push(makeRecord(64, 0));
  // 2 entries + 2 reserved = capacity: the stall threshold.
  EXPECT_TRUE(Buffer.nearFull());
  // The reserve still accepts the in-flight failures.
  EXPECT_TRUE(Buffer.push(makeRecord(128, 0)));
  EXPECT_TRUE(Buffer.push(makeRecord(192, 0)));
  // Completely full: data would be lost.
  EXPECT_FALSE(Buffer.push(makeRecord(256, 0)));
  EXPECT_EQ(Buffer.highWater(), 4u);
}

TEST(FailureBufferTest, HighWaterTracksPeak) {
  FailureBuffer Buffer(8);
  Buffer.push(makeRecord(0, 0));
  Buffer.push(makeRecord(64, 0));
  Buffer.invalidate(0);
  Buffer.invalidate(64);
  EXPECT_EQ(Buffer.size(), 0u);
  EXPECT_EQ(Buffer.highWater(), 2u);
}
