//===- tests/IncrementalMarkTest.cpp - Incremental SATB marking tests -----===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The incremental marking contract: a cycle of fixed-budget mark steps
// interleaved with reference-store mutation ends in a heap bit-identical
// to a stop-the-world full collection at the same point in the mutation
// history - across GC worker counts, across budgets, and with dynamic
// failures landing mid-cycle (parked, drained after the close).
//
//===----------------------------------------------------------------------===//

#include "gc/Heap.h"
#include "gc/HeapAuditor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace wearmem;

namespace {

HeapConfig incConfig(unsigned GcThreads, bool Incremental,
                     unsigned MarkBudget = 256) {
  HeapConfig Config;
  Config.Collector = CollectorKind::StickyImmix;
  Config.BudgetPages = (32 * MiB) / PcmPageSize;
  Config.GcThreads = GcThreads;
  Config.Failures.Rate = 0.02;
  Config.Failures.Seed = 7;
  Config.DefragFreeFraction = 0.35;
  Config.IncrementalMark = Incremental;
  Config.MarkBudget = MarkBudget;
  return Config;
}

/// Builds NumLists rooted linked lists (slot 0 = next, slot 1 = a
/// cross-link slot) and returns the head root indices. Every fourth
/// node carries a "satellite" object in slot 1 that is reachable only
/// through that one cross link; the storm shuffles those around. Node
/// payloads are stamped so payload-hashing digests mean something.
std::vector<unsigned> buildLists(Heap &Hp, unsigned NumLists,
                                 unsigned ListLen) {
  std::vector<unsigned> Heads;
  for (unsigned L = 0; L != NumLists; ++L) {
    unsigned HeadRoot = Hp.createRoot(nullptr);
    for (unsigned I = 0; I != ListLen; ++I) {
      ObjRef Node = Hp.allocate(/*PayloadBytes=*/48, /*NumRefs=*/2);
      if (!Node)
        break;
      *reinterpret_cast<uint64_t *>(objectPayload(Node)) =
          (uint64_t(L) << 32) | I;
      if (I % 4 == 0) {
        ObjRef Sat = Hp.allocate(/*PayloadBytes=*/32, /*NumRefs=*/0);
        if (Sat) {
          *reinterpret_cast<uint64_t *>(objectPayload(Sat)) =
              0x5A7ull << 32 | (uint64_t(L) << 16) | I;
          Hp.writeRef(Node, 1, Sat);
        }
      }
      if (ObjRef Head = Hp.root(HeadRoot))
        Hp.writeRef(Node, 0, Head);
      Hp.setRoot(HeadRoot, Node);
    }
    Heads.push_back(HeadRoot);
  }
  return Heads;
}

ObjRef walk(ObjRef Node, unsigned Steps) {
  for (unsigned I = 0; I != Steps && Node; ++I) {
    ObjRef Next = Heap::readRef(Node, 0);
    if (!Next)
      break;
    Node = Next;
  }
  return Node;
}

/// One deterministic reference-store mutation: swap two nodes' slot-1
/// cross links (or rewrite a head root with its own value). Swaps
/// permute the satellite objects without ever dropping one, so the live
/// set - and therefore the physical heap the digest hashes - evolves
/// identically whether marking runs incrementally or stop-the-world.
/// They are still the classic SATB hazard: between the two writes a
/// satellite's only strong reference is gone, and an already-scanned
/// destination node will never be re-traced, so only the deletion log
/// keeps the snapshot intact.
void mutationOp(Heap &Hp, const std::vector<unsigned> &Heads, uint64_t I) {
  uint64_t H = (I + 1) * 0x9E3779B97F4A7C15ull;
  unsigned L1 = static_cast<unsigned>((H >> 8) % Heads.size());
  unsigned L2 = static_cast<unsigned>((H >> 24) % Heads.size());
  if ((H & 7) == 0) {
    // Root-store flavor of the barrier: rewriting a root with its own
    // value logs the overwritten reference without changing the graph.
    Hp.setRoot(Heads[L1], Hp.root(Heads[L1]));
    return;
  }
  ObjRef A = walk(Hp.root(Heads[L1]), static_cast<unsigned>((H >> 40) % 37));
  ObjRef B = walk(Hp.root(Heads[L2]), static_cast<unsigned>((H >> 48) % 37));
  if (!A || !B || A == B)
    return;
  ObjRef Ta = Heap::readRef(A, 1);
  ObjRef Tb = Heap::readRef(B, 1);
  Hp.writeRef(A, 1, Tb); // Ta now lives only in the deletion log...
  Hp.writeRef(B, 1, Ta); // ...until it resurfaces here.
}

struct LegResult {
  uint64_t Digest = 0;
  uint64_t GcCount = 0;
  uint64_t FullGcCount = 0;
  uint64_t ObjectsAllocated = 0;
  uint64_t BytesAllocated = 0;
  uint64_t FailedLinesDynamic = 0;
  uint64_t PinnedFailurePageRemaps = 0;
  // Incremental-leg internals (compared across worker counts / budgets
  // within incremental legs only; the stop-the-world leg has zeros).
  uint64_t ObjectsMarked = 0;
  uint64_t BytesTraced = 0;
  uint64_t ObjectsEvacuated = 0;
  uint64_t MarkIncrements = 0;
  uint64_t SatbLogged = 0;
  uint64_t SatbDrained = 0;
};

constexpr unsigned StormBatches = 40;
constexpr unsigned OpsPerBatch = 50;

/// Runs one leg: build, then a write storm, with the incremental leg
/// opening a cycle first and stepping once per batch. Both legs finish
/// with the cycle's full collection at the same point in the mutation
/// history, then a settling full collection, then digest.
LegResult runLeg(bool Incremental, unsigned GcThreads, unsigned MarkBudget,
                 bool MidCycleFailure) {
  Heap Hp(incConfig(GcThreads, Incremental, MarkBudget));
  std::vector<unsigned> Heads = buildLists(Hp, 4, 2500);
  // A pinned fail target: never moves, keeps its block held, so the
  // fence lands on the same address in both legs.
  ObjRef Pinned = Hp.allocate(64, 0, /*Pinned=*/true);
  EXPECT_NE(Pinned, nullptr);
  Hp.createRoot(Pinned);
  EXPECT_FALSE(Hp.outOfMemory());

  if (Incremental) {
    EXPECT_TRUE(Hp.beginIncrementalMarkCycle());
  }
  for (unsigned Batch = 0; Batch != StormBatches; ++Batch) {
    for (unsigned I = 0; I != OpsPerBatch; ++I)
      mutationOp(Hp, Heads, uint64_t(Batch) * OpsPerBatch + I);
    if (MidCycleFailure && Batch == StormBatches / 2 && Incremental) {
      // Mid-cycle failure: must park (the whole cycle is a mark phase),
      // not fence lines under the tracer's feet.
      uint64_t DeferredBefore = Hp.stats().MarkPhaseDeferredInterrupts;
      Hp.injectDynamicFailureBatch({Pinned});
      EXPECT_EQ(Hp.stats().MarkPhaseDeferredInterrupts,
                DeferredBefore + 1);
      EXPECT_EQ(Hp.stats().FailedLinesDynamic, 0u)
          << "failure applied while the cycle was open";
    }
    if (Incremental)
      Hp.incrementalMarkStep();
  }
  if (Incremental) {
    Hp.finishIncrementalMarkCycle(); // Drains the parked batch after.
    EXPECT_FALSE(Hp.incrementalCycleOpen());
  } else {
    Hp.collect(CollectionKind::Full);
    if (MidCycleFailure)
      // The incremental leg fences at the post-close drain; match that
      // point in virtual time.
      Hp.injectDynamicFailureBatch({Pinned});
  }
  Hp.collect(CollectionKind::Full); // Settle.

  HeapAuditor Auditor(Hp);
  LegResult R;
  R.Digest = Auditor.digest(/*HashPayload=*/true);
  EXPECT_TRUE(Auditor.audit().passed());
  const HeapStats &S = Hp.stats();
  R.GcCount = S.GcCount;
  R.FullGcCount = S.FullGcCount;
  R.ObjectsAllocated = S.ObjectsAllocated;
  R.BytesAllocated = S.BytesAllocated;
  R.FailedLinesDynamic = S.FailedLinesDynamic;
  R.PinnedFailurePageRemaps = S.PinnedFailurePageRemaps;
  R.ObjectsMarked = S.ObjectsMarked;
  R.BytesTraced = S.BytesTraced;
  R.ObjectsEvacuated = S.ObjectsEvacuated;
  R.MarkIncrements = S.MarkIncrements;
  R.SatbLogged = S.SatbLogged;
  R.SatbDrained = S.SatbDrained;
  return R;
}

void expectCrossLegEqual(const LegResult &Inc, const LegResult &Stw,
                         const char *What) {
  EXPECT_EQ(Inc.Digest, Stw.Digest) << What;
  EXPECT_EQ(Inc.GcCount, Stw.GcCount) << What;
  EXPECT_EQ(Inc.FullGcCount, Stw.FullGcCount) << What;
  EXPECT_EQ(Inc.ObjectsAllocated, Stw.ObjectsAllocated) << What;
  EXPECT_EQ(Inc.BytesAllocated, Stw.BytesAllocated) << What;
  EXPECT_EQ(Inc.FailedLinesDynamic, Stw.FailedLinesDynamic) << What;
  EXPECT_EQ(Inc.PinnedFailurePageRemaps, Stw.PinnedFailurePageRemaps)
      << What;
  // The storm preserves the live set, so even the trace and evacuation
  // work must match the stop-the-world leg exactly.
  EXPECT_EQ(Inc.ObjectsMarked, Stw.ObjectsMarked) << What;
  EXPECT_EQ(Inc.BytesTraced, Stw.BytesTraced) << What;
  EXPECT_EQ(Inc.ObjectsEvacuated, Stw.ObjectsEvacuated) << What;
}

void expectIncLegsEqual(const LegResult &A, const LegResult &B,
                        const char *What) {
  EXPECT_EQ(A.Digest, B.Digest) << What;
  EXPECT_EQ(A.ObjectsMarked, B.ObjectsMarked) << What;
  EXPECT_EQ(A.BytesTraced, B.BytesTraced) << What;
  EXPECT_EQ(A.ObjectsEvacuated, B.ObjectsEvacuated) << What;
  EXPECT_EQ(A.MarkIncrements, B.MarkIncrements) << What;
  EXPECT_EQ(A.SatbLogged, B.SatbLogged) << What;
  EXPECT_EQ(A.SatbDrained, B.SatbDrained) << What;
  EXPECT_EQ(A.GcCount, B.GcCount) << What;
  EXPECT_EQ(A.FullGcCount, B.FullGcCount) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Gating and lifecycle
//===----------------------------------------------------------------------===//

TEST(IncrementalMarkTest, RequiresConfigAndRejectsNestedCycles) {
  {
    Heap Hp(incConfig(1, /*Incremental=*/false));
    EXPECT_FALSE(Hp.beginIncrementalMarkCycle())
        << "IncrementalMark off must refuse to open a cycle";
    EXPECT_FALSE(Hp.incrementalMarkStep());
    Hp.finishIncrementalMarkCycle(); // No-op, must not crash.
  }
  Heap Hp(incConfig(1, /*Incremental=*/true));
  buildLists(Hp, 1, 100);
  ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
  EXPECT_FALSE(Hp.beginIncrementalMarkCycle()) << "no nested cycles";
  EXPECT_TRUE(Hp.incrementalCycleOpen());
  // An explicit collection demand closes the open cycle.
  Hp.collect(CollectionKind::Full);
  EXPECT_FALSE(Hp.incrementalCycleOpen());
  EXPECT_EQ(Hp.stats().IncrementalCyclesOpened, 1u);
  EXPECT_EQ(Hp.stats().IncrementalCyclesClosed, 1u);
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
}

TEST(IncrementalMarkTest, AllocationDuringCycleSurvivesTheClose) {
  Heap Hp(incConfig(1, /*Incremental=*/true));
  std::vector<unsigned> Heads = buildLists(Hp, 2, 500);
  ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
  // Births during the cycle are allocated black: kept by the closing
  // sweep even though the snapshot never reached them, and their slots
  // are fixed up when their referents get evacuated.
  unsigned NewRoot = Hp.createRoot(nullptr);
  for (unsigned I = 0; I != 300; ++I) {
    ObjRef Node = Hp.allocate(40, 1);
    ASSERT_NE(Node, nullptr);
    *reinterpret_cast<uint64_t *>(objectPayload(Node)) = 0xB1A0000 + I;
    if (ObjRef Head = Hp.root(NewRoot))
      Hp.writeRef(Node, 0, Head);
    Hp.setRoot(NewRoot, Node);
    if (I % 50 == 25)
      Hp.incrementalMarkStep();
  }
  ObjRef Large = Hp.allocate(16 * 1024, 0);
  ASSERT_NE(Large, nullptr);
  std::memset(objectPayload(Large), 0x5A, 16 * 1024);
  unsigned LargeRoot = Hp.createRoot(Large);
  Hp.finishIncrementalMarkCycle();
  // Every in-cycle birth is intact after the close.
  ObjRef Node = Hp.root(NewRoot);
  for (unsigned I = 0; I != 300; ++I) {
    ASSERT_NE(Node, nullptr);
    EXPECT_EQ(*reinterpret_cast<uint64_t *>(objectPayload(Node)),
              0xB1A0000 + (299 - I));
    Node = Heap::readRef(Node, 0);
  }
  uint8_t *P = objectPayload(Hp.root(LargeRoot));
  for (unsigned I = 0; I != 16 * 1024; ++I)
    ASSERT_EQ(P[I], 0x5A);
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
}

//===----------------------------------------------------------------------===//
// Equivalence with stop-the-world marking
//===----------------------------------------------------------------------===//

TEST(IncrementalMarkTest, MatchesStopTheWorldAcrossWorkerCounts) {
  LegResult Stw = runLeg(/*Incremental=*/false, 1, 256,
                         /*MidCycleFailure=*/false);
  LegResult IncSerial = runLeg(/*Incremental=*/true, 1, 256, false);
  expectCrossLegEqual(IncSerial, Stw, "incremental(1 worker) vs STW");
  EXPECT_GT(IncSerial.SatbLogged, 0u) << "storm must exercise the barrier";
  EXPECT_EQ(IncSerial.SatbDrained, IncSerial.SatbLogged)
      << "every logged deletion must eventually drain";
  for (unsigned Threads : {2u, 4u, 8u}) {
    LegResult Inc = runLeg(/*Incremental=*/true, Threads, 256, false);
    expectIncLegsEqual(Inc, IncSerial, "worker-count divergence");
    expectCrossLegEqual(Inc, Stw, "incremental(N workers) vs STW");
  }
}

TEST(IncrementalMarkTest, FinalHeapIsIndependentOfMarkBudget) {
  LegResult Base = runLeg(/*Incremental=*/true, 2, 256, false);
  for (unsigned Budget : {0u, 64u, 4096u}) {
    LegResult R = runLeg(/*Incremental=*/true, 2, Budget, false);
    expectIncLegsEqual(R, Base, "budget changed the outcome");
  }
  // Rerun determinism at a fixed configuration.
  LegResult Again = runLeg(/*Incremental=*/true, 2, 256, false);
  expectIncLegsEqual(Again, Base, "rerun divergence");
}

TEST(IncrementalMarkTest, MidCycleDynamicFailureParksUntilTheClose) {
  LegResult Stw = runLeg(/*Incremental=*/false, 1, 256,
                         /*MidCycleFailure=*/true);
  EXPECT_EQ(Stw.FailedLinesDynamic, 1u);
  for (unsigned Threads : {1u, 4u}) {
    LegResult Inc = runLeg(/*Incremental=*/true, Threads, 256,
                           /*MidCycleFailure=*/true);
    expectCrossLegEqual(Inc, Stw, "mid-cycle failure leg vs STW");
  }
}

TEST(IncrementalMarkTest, MidCycleAuditToleratesDeferredLineMarks) {
  // While a cycle is open, evacuation candidates are claimed at the new
  // epoch with their old lines deliberately unmarked until the closing
  // pause decides copy versus re-mark. A cross-layer audit taken
  // between increments (the soak tool audits on its own cadence, which
  // lands inside open cycles) must read that as the mark-phase
  // transient it is, not as a mark/line-mark inconsistency.
  Heap Hp(incConfig(/*GcThreads=*/1, /*Incremental=*/true));
  std::vector<unsigned> Heads = buildLists(Hp, 4, 800);
  // Fragment the heap so the cycle open selects defrag candidates:
  // drop half the lists, then collect so the sweep records the holes.
  Hp.setRoot(Heads[1], nullptr);
  Hp.setRoot(Heads[3], nullptr);
  Hp.collect(CollectionKind::Full);
  ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
  bool More = true;
  while (More) {
    More = Hp.incrementalMarkStep();
    HeapAuditor Auditor(Hp);
    AuditReport Report = Auditor.audit();
    ASSERT_TRUE(Report.passed())
        << "mid-cycle audit: " << Report.Violations.front();
  }
  Hp.finishIncrementalMarkCycle();
  EXPECT_TRUE(HeapAuditor(Hp).audit().passed());
}

TEST(IncrementalMarkTest, DrainedFailureOnStaleLineKeepsSuccessorLive) {
  // The parked batch drains right after the close, when sweep has left
  // dead lines' mark bytes stale. The conservative spill transfer must
  // not copy such a stale mark over the following line: the successor
  // here is live at the current epoch, and the downgrade would hand its
  // line to the hole scan (the auditor sees it as a mark/line-mark
  // mismatch first).
  HeapConfig Config = incConfig(/*GcThreads=*/1, /*Incremental=*/true);
  Config.Failures.Rate = 0.0; // Fresh block: adjacency is deterministic.
  Heap Hp(Config);
  const uint32_t OneLine =
      static_cast<uint32_t>(Config.LineSize - ObjectHeaderBytes);
  // Two adjacent one-line objects, pinned so neither ever moves.
  ObjRef A = Hp.allocate(OneLine, 0, /*Pinned=*/true);
  ObjRef B = Hp.allocate(OneLine, 0, /*Pinned=*/true);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(B, A + Config.LineSize) << "bump allocation not adjacent";
  unsigned RootA = Hp.createRoot(A);
  unsigned RootB = Hp.createRoot(B);
  std::memset(objectPayload(B), 0x6B, OneLine);
  Hp.collect(CollectionKind::Full); // Both lines marked at this epoch.
  // Kill A; the next full trace skips its line, so sweep frees it but
  // the mark byte keeps the previous epoch - the stale dying line.
  uint8_t *DyingLine = A;
  Hp.releaseRoot(RootA);
  Hp.collect(CollectionKind::Full);

  ASSERT_TRUE(Hp.beginIncrementalMarkCycle());
  Hp.injectDynamicFailureBatch({DyingLine}); // Parks: the cycle is a
                                             // mark phase throughout.
  while (Hp.incrementalMarkStep())
    ;
  Hp.finishIncrementalMarkCycle(); // Drain fences the stale line.
  EXPECT_EQ(Hp.stats().FailedLinesDynamic, 1u);

  // B on the successor line must still be live at the current epoch.
  HeapAuditor Auditor(Hp);
  EXPECT_TRUE(Auditor.audit().passed());
  uint8_t *P = objectPayload(Hp.root(RootB));
  for (uint32_t I = 0; I != OneLine; ++I)
    ASSERT_EQ(P[I], 0x6B);
  Hp.collect(CollectionKind::Full);
  EXPECT_TRUE(HeapAuditor(Hp).audit().passed());
  EXPECT_NE(Hp.root(RootB), nullptr);
}
