//===- tests/WearTest.cpp - Wear leveling and wear simulation tests -------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "pcm/WearLeveler.h"
#include "pcm/WearSimulation.h"

#include <gtest/gtest.h>

#include <set>

using namespace wearmem;

TEST(StartGapTest, InitialMappingIsIdentity) {
  StartGapLeveler Leveler(64, 10);
  for (size_t L = 0; L != 64; ++L)
    EXPECT_EQ(Leveler.translate(L), L);
  EXPECT_EQ(Leveler.gapPosition(), 64u);
}

TEST(StartGapTest, GapMovesEveryInterval) {
  StartGapLeveler Leveler(64, 10);
  for (int I = 0; I != 9; ++I)
    EXPECT_EQ(Leveler.recordWrite(), SIZE_MAX);
  // The 10th write moves the gap: slot 63's content copies into slot 64.
  EXPECT_EQ(Leveler.recordWrite(), 64u);
  EXPECT_EQ(Leveler.gapPosition(), 63u);
  // Logical 63 now maps past the gap.
  EXPECT_EQ(Leveler.translate(63), 64u);
  EXPECT_EQ(Leveler.translate(62), 62u);
}

TEST(StartGapTest, MappingStaysBijective) {
  StartGapLeveler Leveler(64, 3);
  for (int Write = 0; Write != 2000; ++Write) {
    Leveler.recordWrite();
    std::set<size_t> Slots;
    for (size_t L = 0; L != 64; ++L) {
      size_t Slot = Leveler.translate(L);
      EXPECT_LE(Slot, 64u);
      Slots.insert(Slot);
    }
    ASSERT_EQ(Slots.size(), 64u) << "translation lost bijectivity";
    EXPECT_EQ(Slots.count(Leveler.gapPosition()), 0u)
        << "a logical line mapped onto the gap";
  }
}

TEST(StartGapTest, FullTraversalRotatesStart) {
  StartGapLeveler Leveler(8, 1);
  // 8 moves walk the gap to 0; the 9th wraps it and bumps start.
  for (int I = 0; I != 8; ++I)
    Leveler.recordWrite();
  EXPECT_EQ(Leveler.gapPosition(), 0u);
  Leveler.recordWrite();
  EXPECT_EQ(Leveler.gapPosition(), 8u);
  EXPECT_EQ(Leveler.startPosition(), 1u);
}

TEST(WearSimTest, UnleveledSkewConcentratesFailures) {
  WearSimConfig Config;
  Config.NumLines = 64 * PcmLinesPerPage;
  Config.MeanLineLifetime = 500;
  Config.HotFraction = 0.1;
  Config.HotWeight = 0.9;
  Config.UseStartGap = false;
  WearSimResult Result = simulateWear(Config, 0.10);

  EXPECT_NEAR(Result.Map.failedFraction(), 0.10, 0.01);
  // Failures concentrate in the hot prefix.
  size_t HotLines = static_cast<size_t>(0.1 * Config.NumLines);
  size_t HotFailures = 0;
  for (size_t L = 0; L != HotLines; ++L)
    HotFailures += Result.Map.isFailed(L);
  EXPECT_GT(HotFailures, Result.Map.failedCount() * 9 / 10);
}

TEST(WearSimTest, StartGapSpreadsFailures) {
  // Leveling spreads wear only if the gap completes many traversals
  // before cells die, so this test uses a small array, a tight gap
  // interval, and generous budgets (in reality budgets are ~1e8 writes,
  // dwarfing rotation time).
  WearSimConfig Config;
  Config.NumLines = 128;
  Config.MeanLineLifetime = 20000;
  Config.HotFraction = 0.1;
  Config.HotWeight = 0.9;
  Config.UseStartGap = true;
  Config.GapInterval = 1;
  WearSimResult Result = simulateWear(Config, 0.10);

  // With leveling, failures spread: the hot prefix holds nowhere near
  // all of them.
  size_t HotLines = static_cast<size_t>(0.1 * Config.NumLines);
  size_t HotFailures = 0;
  for (size_t L = 0; L != HotLines; ++L)
    HotFailures += Result.Map.isFailed(L);
  EXPECT_LT(HotFailures, Result.Map.failedCount() / 2);
}

TEST(WearSimTest, LevelingDelaysFirstFailureButFragments) {
  WearSimConfig Config;
  Config.NumLines = 128;
  Config.MeanLineLifetime = 20000;
  Config.HotFraction = 0.05;
  Config.HotWeight = 0.9;

  Config.UseStartGap = false;
  WearSimResult Unleveled = simulateWear(Config, 0.05);
  Config.UseStartGap = true;
  Config.GapInterval = 1;
  WearSimResult Leveled = simulateWear(Config, 0.05);

  // Wear leveling's selling point: the first failure comes much later.
  EXPECT_GT(Leveled.WritesAtFirstFailure,
            2 * Unleveled.WritesAtFirstFailure);
  // The paper's counterpoint (Section 7.2): once failures exist, the
  // levelled map is far more fragmented - shorter working runs.
  EXPECT_LT(Leveled.Map.meanWorkingRun(),
            Unleveled.Map.meanWorkingRun() / 2);
}
