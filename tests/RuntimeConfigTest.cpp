//===- tests/RuntimeConfigTest.cpp - Config, handles, calibration ---------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "workload/Runner.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace wearmem;

TEST(RuntimeConfigTest, Describe) {
  RuntimeConfig Config;
  EXPECT_EQ(Config.describe(), "S-IX L256");
  Config.FailureRate = 0.25;
  Config.ClusteringRegionPages = 2;
  EXPECT_EQ(Config.describe(), "S-IX^PCM L256 2CL f=25%");
  Config.ClusteringRegionPages = 0;
  Config.CompensateForFailures = false;
  EXPECT_EQ(Config.describe(), "S-IX^PCM L256 noCL f=25% NoComp");
  Config.Collector = CollectorKind::MarkSweep;
  Config.FailureRate = 0.0;
  Config.LineSize = 64;
  EXPECT_EQ(Config.describe(), "MS L64");
}

TEST(RuntimeConfigTest, ClusteringImpliesPushPattern) {
  RuntimeConfig Config;
  Config.FailureRate = 0.10;
  Config.ClusteringRegionPages = 2;
  HeapConfig Heap = Config.toHeapConfig();
  EXPECT_EQ(Heap.Failures.Pattern, FailurePattern::PushClustered);
  EXPECT_EQ(Heap.Failures.Cluster.RegionPages, 2u);
  EXPECT_TRUE(Heap.Failures.Cluster.ChargeMetadata);
  // Budget is a whole number of 2-page regions and blocks.
  EXPECT_EQ(Heap.BudgetPages % 8, 0u);

  // Clustering without failures degrades to the plain pattern (nothing
  // to cluster).
  Config.FailureRate = 0.0;
  EXPECT_EQ(Config.toHeapConfig().Failures.Pattern,
            FailurePattern::Uniform);
}

TEST(RuntimeConfigTest, BudgetRoundsToBlocks) {
  RuntimeConfig Config;
  Config.HeapBytes = 1000 * 1000; // Not block-aligned.
  HeapConfig Heap = Config.toHeapConfig();
  EXPECT_EQ(Heap.BudgetPages % Heap.pagesPerBlock(), 0u);
  EXPECT_GE(Heap.BudgetPages * PcmPageSize, Config.HeapBytes);
}

TEST(HandleTest, MoveSemantics) {
  RuntimeConfig Config;
  Config.HeapBytes = 2 * MiB;
  Runtime Rt(Config);
  Handle A = Rt.allocateRooted(8, 0);
  ObjRef Obj = A.get();
  ASSERT_NE(Obj, nullptr);
  Handle B = std::move(A);
  EXPECT_FALSE(A.valid());
  EXPECT_TRUE(B.valid());
  EXPECT_EQ(B.get(), Obj);
  Handle C;
  EXPECT_FALSE(C.valid());
  C = std::move(B);
  EXPECT_TRUE(C.valid());
  C.release();
  EXPECT_FALSE(C.valid());
}

TEST(HandleTest, ReleasedRootsAreCollected) {
  RuntimeConfig Config;
  Config.HeapBytes = 2 * MiB;
  Runtime Rt(Config);
  {
    Handle Doomed = Rt.allocateRooted(64 * KiB, 0);
    ASSERT_NE(Doomed.get(), nullptr);
    EXPECT_GT(Rt.heap().largeObjectSpace().pagesHeld(), 0u);
  }
  Rt.collect(true);
  EXPECT_EQ(Rt.heap().largeObjectSpace().pagesHeld(), 0u);
}

// Re-derives each profile's minimum heap by binary search and checks the
// baked values. Slow (a few minutes), so it only runs when
// WEARMEM_CALIBRATE=1; the baked values are validated cheaply (at 2x) by
// WorkloadTest's completion tests.
TEST(CalibrationTest, BakedMinHeapsMatchMeasurement) {
  if (!std::getenv("WEARMEM_CALIBRATE"))
    GTEST_SKIP() << "set WEARMEM_CALIBRATE=1 to run the full calibration";
  for (const Profile &P : allProfiles()) {
    size_t Lo = 1 * MiB, Hi = 64 * MiB;
    auto Completes = [&](size_t Bytes) {
      RuntimeConfig Config;
      Config.HeapBytes = Bytes;
      return runOnce(P, Config).Completed;
    };
    ASSERT_TRUE(Completes(Hi)) << P.Name;
    while (Hi - Lo > 256 * KiB) {
      size_t Mid = (Lo + Hi) / 2;
      (Completes(Mid) ? Hi : Lo) = Mid;
    }
    // Baked minimum within 25% of the measured one.
    EXPECT_GT(static_cast<double>(P.MinHeapBytes),
              0.75 * static_cast<double>(Hi))
        << P.Name;
    EXPECT_LT(static_cast<double>(P.MinHeapBytes),
              1.5 * static_cast<double>(Hi))
        << P.Name;
  }
}
