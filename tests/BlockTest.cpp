//===- tests/BlockTest.cpp - Immix block and line-map tests ---------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/Block.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

using namespace wearmem;

namespace {

struct BlockFixture {
  explicit BlockFixture(size_t LineSize) {
    Config.LineSize = LineSize;
    Mem = static_cast<uint8_t *>(
        std::aligned_alloc(Config.BlockSize, Config.BlockSize));
    TheBlock = std::make_unique<Block>(Mem, Config);
  }
  ~BlockFixture() { std::free(Mem); }

  HeapConfig Config;
  uint8_t *Mem;
  std::unique_ptr<Block> TheBlock;
};

} // namespace

TEST(BlockTest, Geometry) {
  BlockFixture F(256);
  EXPECT_EQ(F.TheBlock->lineCount(), 128u);
  EXPECT_EQ(F.TheBlock->lineAddr(3), F.Mem + 3 * 256);
  EXPECT_EQ(F.TheBlock->lineOf(F.Mem + 1000), 3u);
  EXPECT_TRUE(F.TheBlock->isPerfect());
}

TEST(BlockTest, FailureWordIntakeExpandsToImmixLines) {
  // One failed 64 B PCM line poisons a whole 256 B Immix line: the false
  // failure effect of Section 6.2.
  BlockFixture F(256);
  uint64_t Words[8] = {};
  Words[0] = 0b1; // PCM line 0 -> Immix line 0.
  Words[2] = uint64_t(1) << 17; // Page 2, PCM line 17.
  F.TheBlock->applyFailureWords(Words, 8);
  EXPECT_EQ(F.TheBlock->failedLines(), 2u);
  EXPECT_TRUE(F.TheBlock->lineIsFailed(0));
  // Page 2 starts at byte 8192 = Immix line 32; PCM line 17 is at byte
  // offset 17*64 = 1088 into the page -> Immix line 32 + 4.
  EXPECT_TRUE(F.TheBlock->lineIsFailed(36));
  EXPECT_FALSE(F.TheBlock->isPerfect());
  // With 64 B Immix lines there is no false-failure expansion.
  BlockFixture G(64);
  G.TheBlock->applyFailureWords(Words, 8);
  EXPECT_EQ(G.TheBlock->failedLines(), 2u);
  EXPECT_TRUE(G.TheBlock->lineIsFailed(0));
  EXPECT_TRUE(G.TheBlock->lineIsFailed(2 * 64 + 17));
}

TEST(BlockTest, FindHoleSkipsLiveAndFailed) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  B.markLine(2, 5);
  B.markLine(3, 5);
  B.failLine(6);
  Hole H;
  // Conservative: line 4 is implicitly live (follows live line 3).
  ASSERT_TRUE(B.findHole(0, 5, 5, /*Conservative=*/true, H));
  EXPECT_EQ(H.StartLine, 0u);
  EXPECT_EQ(H.EndLine, 2u);
  ASSERT_TRUE(B.findHole(H.EndLine, 5, 5, true, H));
  EXPECT_EQ(H.StartLine, 5u);
  EXPECT_EQ(H.EndLine, 6u);
  ASSERT_TRUE(B.findHole(H.EndLine, 5, 5, true, H));
  EXPECT_EQ(H.StartLine, 7u);
  EXPECT_EQ(H.EndLine, 128u);
  EXPECT_FALSE(B.findHole(H.EndLine, 5, 5, true, H));
}

TEST(BlockTest, FindHoleExactMode) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  B.markLine(2, 5);
  Hole H;
  ASSERT_TRUE(B.findHole(0, 5, 5, /*Conservative=*/false, H));
  EXPECT_EQ(H.StartLine, 0u);
  EXPECT_EQ(H.EndLine, 2u);
  ASSERT_TRUE(B.findHole(2, 5, 5, false, H));
  EXPECT_EQ(H.StartLine, 3u); // No implicit-live skip in exact mode.
}

TEST(BlockTest, FindHoleRespectsBothEpochs) {
  // Regression test for the evacuation bug: during a full collection,
  // lines live at the previous sweep (epoch 5) AND lines the trace just
  // re-marked (epoch 6) must both be treated as unavailable.
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  B.markLine(0, 5); // Live at the last sweep, not yet re-marked.
  B.markLine(1, 6); // Re-marked in place by the in-progress trace.
  Hole H;
  ASSERT_TRUE(B.findHole(0, 5, 6, /*Conservative=*/false, H));
  EXPECT_EQ(H.StartLine, 2u);
}

TEST(BlockTest, StaleEpochsReadAsFree) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  B.markLine(0, 4); // Stale: dead since epoch 5.
  Hole H;
  ASSERT_TRUE(B.findHole(0, 5, 5, false, H));
  EXPECT_EQ(H.StartLine, 0u);
}

TEST(BlockTest, SweepClassifiesAndCounts) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  B.failLine(10);
  B.markLine(20, 7);
  B.markLine(40, 7);
  Block::SweepResult R = B.sweep(7, /*Conservative=*/true);
  EXPECT_FALSE(R.Empty);
  // 128 lines - 1 failed - 2 live - 2 implicit (21 and 41).
  EXPECT_EQ(R.FreeLines, 128u - 5u);
  EXPECT_EQ(R.Holes, 4u); // [0,10) [11,20) [22,40) [42,128).
  EXPECT_EQ(B.freeLines(), R.FreeLines);

  // At the next epoch everything stale reads as free except failures.
  Block::SweepResult R2 = B.sweep(8, true);
  EXPECT_TRUE(R2.Empty);
  EXPECT_EQ(R2.FreeLines, 127u);
  EXPECT_EQ(R2.Holes, 2u);
}

TEST(BlockTest, DynamicPcmFailureUpdatesWords) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  uint64_t Words[8] = {};
  B.applyFailureWords(Words, 8);
  // Fail the PCM line at byte 4096+128 (page 1, PCM line 2).
  B.failPcmLineAt(4096 + 128);
  EXPECT_EQ(B.pageFailureWords()[1], uint64_t(1) << 2);
  // The covering Immix line (16 + 0) is retired.
  EXPECT_TRUE(B.lineIsFailed(16));
  EXPECT_EQ(B.failedLines(), 1u);
}

TEST(BlockTest, UnfailPageRestoresLines) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  uint64_t Words[8] = {};
  Words[3] = 0xFF; // 8 failed PCM lines in page 3 -> 2 Immix lines.
  B.applyFailureWords(Words, 8);
  EXPECT_EQ(B.failedLines(), 2u);
  unsigned Restored = B.unfailPage(3, /*LiveEpoch=*/0);
  EXPECT_EQ(Restored, 2u);
  EXPECT_EQ(B.failedLines(), 0u);
  EXPECT_EQ(B.pageFailureWords()[3], 0u);
  EXPECT_TRUE(B.isPerfect());
}

TEST(BlockTest, MarkLineNeverOverwritesFailed) {
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  B.failLine(5);
  B.markLine(5, 9);
  EXPECT_TRUE(B.lineIsFailed(5));
}

TEST(BlockTest, DynamicFailureTransfersSpillMark) {
  // Under conservative marking a small object marks only its first
  // line; the tail spilling into the next line is protected by the
  // "line after a live line" rule. When the first line dies
  // dynamically its live mark must transfer to the next line, or the
  // hole scan would hand out the tail.
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  uint64_t Words[8] = {};
  B.applyFailureWords(Words, 8);
  B.markLine(20, 7); // A small object's head line; tail spills into 21.
  B.failPcmLineAt(20 * 256, /*PreserveSpill=*/true, /*LiveEpoch=*/7);
  EXPECT_TRUE(B.lineIsFailed(20));
  EXPECT_EQ(B.lineMark(21), 7u); // Protection now explicit.
  Hole H;
  ASSERT_TRUE(B.findHole(21, 7, 7, /*Conservative=*/true, H));
  EXPECT_EQ(H.StartLine, 23u); // 21 live, 22 implicitly live.

  // An explicitly live next line is left alone.
  B.markLine(40, 7);
  B.markLine(41, 7);
  B.failPcmLineAt(40 * 256, /*PreserveSpill=*/true, /*LiveEpoch=*/7);
  EXPECT_EQ(B.lineMark(41), 7u);

  // Without PreserveSpill (exact marking) no transfer happens.
  B.markLine(60, 7);
  B.failPcmLineAt(60 * 256);
  EXPECT_EQ(B.lineMark(61), 0u);

  // A dead line (mark 0) transfers nothing.
  B.failPcmLineAt(80 * 256, /*PreserveSpill=*/true, /*LiveEpoch=*/7);
  EXPECT_EQ(B.lineMark(81), 0u);

  // The transfer never resurrects a failed next line.
  B.failLine(91);
  B.markLine(90, 7);
  B.failPcmLineAt(90 * 256, /*PreserveSpill=*/true, /*LiveEpoch=*/7);
  EXPECT_TRUE(B.lineIsFailed(91));
}

TEST(BlockTest, StaleDyingLineNeverDowngradesSuccessor) {
  // Sweep leaves dead lines' mark bytes stale, so a dynamically failed
  // line can carry an *old* epoch. Its data is dead - there is no
  // spilled tail to protect - and transferring the stale byte would
  // downgrade a successor that the current epoch marked live, handing
  // the hole scan a line that still holds a live object.
  BlockFixture F(256);
  Block &B = *F.TheBlock;
  uint64_t Words[8] = {};
  B.applyFailureWords(Words, 8);

  B.markLine(20, 6); // Stale: the hole scans honor epoch 7 now.
  B.markLine(21, 7); // Live at the current epoch.
  B.failPcmLineAt(20 * 256, /*PreserveSpill=*/true, /*LiveEpoch=*/7);
  EXPECT_TRUE(B.lineIsFailed(20));
  EXPECT_EQ(B.lineMark(21), 7u); // Not downgraded to 6.
  Hole H;
  EXPECT_FALSE(B.findHole(21, 7, 7, /*Conservative=*/true, H) &&
               H.StartLine == 21u);

  // A stale dying line next to a dead successor transfers nothing
  // either: stale protection would be ignored by the hole scan anyway.
  B.markLine(40, 6);
  B.failPcmLineAt(40 * 256, /*PreserveSpill=*/true, /*LiveEpoch=*/7);
  EXPECT_EQ(B.lineMark(41), 0u);
}
