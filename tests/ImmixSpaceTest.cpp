//===- tests/ImmixSpaceTest.cpp - Immix space and allocator tests ---------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/ImmixSpace.h"

#include <gtest/gtest.h>

using namespace wearmem;

namespace {

struct SpaceFixture {
  SpaceFixture(double Rate, size_t Pages = 256, size_t LineSize = 256)
      : Os(Pages, makeFailures(Rate)) {
    Config.LineSize = LineSize;
    Config.BudgetPages = Pages;
    Space = std::make_unique<ImmixSpace>(
        Os, Config, Stats, [this](size_t P) {
          return Space->pagesHeld() + P <= Config.BudgetPages;
        });
    Allocator = std::make_unique<ImmixAllocator>(*Space, Config, Stats);
  }

  static FailureConfig makeFailures(double Rate) {
    FailureConfig F;
    F.Rate = Rate;
    F.Seed = 1234;
    return F;
  }

  HeapConfig Config;
  HeapStats Stats;
  FailureAwareOs Os;
  std::unique_ptr<ImmixSpace> Space;
  std::unique_ptr<ImmixAllocator> Allocator;
};

} // namespace

TEST(ImmixAllocatorTest, BumpAllocationIsContiguous) {
  SpaceFixture F(0.0);
  uint8_t *A = F.Allocator->alloc(32);
  uint8_t *B = F.Allocator->alloc(32);
  uint8_t *C = F.Allocator->alloc(64);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(B, A + 32);
  EXPECT_EQ(C, A + 64);
}

TEST(ImmixAllocatorTest, NeverHandsOutFailedLines) {
  SpaceFixture F(0.25);
  for (int I = 0; I != 20000; ++I) {
    uint8_t *Mem = F.Allocator->alloc(64);
    if (!Mem)
      break; // Budget exhausted; fine.
    Block *B = F.Space->blockOf(Mem);
    ASSERT_NE(B, nullptr);
    EXPECT_FALSE(B->lineIsFailed(B->lineOf(Mem)));
    EXPECT_FALSE(B->lineIsFailed(B->lineOf(Mem + 63)));
  }
  EXPECT_GT(F.Stats.LinesSkippedFailed, 0u);
}

TEST(ImmixAllocatorTest, MediumObjectsUseOverflow) {
  SpaceFixture F(0.0);
  // Fill the bump hole down to a 512-byte remainder, then allocate a
  // medium object: it does not fit and must go to the overflow block
  // rather than waste the remainder.
  uint8_t *Small = F.Allocator->alloc(64);
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(F.Allocator->alloc(32 * KiB - 512 - 64), nullptr);
  uint8_t *Medium = F.Allocator->alloc(4096);
  ASSERT_NE(Medium, nullptr);
  EXPECT_GT(F.Stats.OverflowAllocs, 0u);
  EXPECT_NE(F.Space->blockOf(Medium), F.Space->blockOf(Small));
  // The small-object cursor still finishes its hole.
  uint8_t *Tail = F.Allocator->alloc(64);
  EXPECT_EQ(F.Space->blockOf(Tail), F.Space->blockOf(Small));
}

TEST(ImmixAllocatorTest, OverflowSearchesRemainderUnderFailures) {
  SpaceFixture F(0.25);
  // Allocate mediums under 25% failures; the failure-aware overflow
  // search must find fitting holes or fall back to perfect blocks, and
  // every grant must be hole-clean.
  for (int I = 0; I != 400; ++I) {
    uint8_t *Mem = F.Allocator->alloc(2048);
    if (!Mem)
      break;
    Block *B = F.Space->blockOf(Mem);
    unsigned First = B->lineOf(Mem);
    unsigned Last = B->lineOf(Mem + 2047);
    for (unsigned Line = First; Line <= Last; ++Line)
      ASSERT_FALSE(B->lineIsFailed(Line));
  }
  EXPECT_GT(F.Stats.OverflowSearches, 0u);
}

TEST(ImmixSpaceTest, SweepRecyclesAndReleases) {
  SpaceFixture F(0.0, /*Pages=*/64);
  // Allocate a few blocks' worth, mark one line live, sweep.
  std::vector<uint8_t *> Ptrs;
  for (int I = 0; I != 2000; ++I) {
    uint8_t *Mem = F.Allocator->alloc(64);
    if (!Mem)
      break;
    Ptrs.push_back(Mem);
  }
  size_t BlocksBefore = F.Space->blockCount();
  ASSERT_GT(BlocksBefore, 2u);
  // Mark exactly one object's line at the new epoch.
  Block *Live = F.Space->blockOf(Ptrs[100]);
  Live->markLine(Live->lineOf(Ptrs[100]), 2);
  F.Allocator->retire();
  ImmixSweepTotals Totals = F.Space->sweep(2);
  EXPECT_EQ(Totals.RecyclableBlocks, 1u);
  EXPECT_EQ(Totals.FreeBlocks, BlocksBefore - 1);
  // Releasing keeps the requested slack and returns the rest to the OS.
  size_t Released = F.Space->releaseExcessFreeBlocks(2);
  EXPECT_EQ(Released, BlocksBefore - 1 - 2);
  EXPECT_EQ(F.Space->blockCount(), 3u);
}

TEST(ImmixSpaceTest, TakePerfectFreePrefersPerfectBlocks) {
  SpaceFixture F(0.10);
  Block *Perfect = F.Space->takePerfectFree();
  ASSERT_NE(Perfect, nullptr);
  EXPECT_TRUE(Perfect->isPerfect());
}

TEST(ImmixSpaceTest, BlockOfMissesForeignAddresses) {
  SpaceFixture F(0.0);
  uint8_t *Mem = F.Allocator->alloc(64);
  ASSERT_NE(F.Space->blockOf(Mem), nullptr);
  alignas(64) static uint8_t Foreign[64];
  EXPECT_EQ(F.Space->blockOf(Foreign), nullptr);
}

TEST(ImmixSpaceTest, EvacuatingRecyclableIsReinstatedAfterProbe) {
  // Regression: takeRecyclable/takeRecyclableFitting used to pop an
  // evacuating block and drop it on the floor, leaking it from the
  // recycle list until some later sweep happened to re-list it.
  SpaceFixture F(0.0, /*Pages=*/64);
  std::vector<uint8_t *> Ptrs;
  for (int I = 0; I != 2000; ++I) {
    uint8_t *Mem = F.Allocator->alloc(64);
    if (!Mem)
      break;
    Ptrs.push_back(Mem);
  }
  // One line live -> exactly one recyclable block after the sweep.
  Block *Live = F.Space->blockOf(Ptrs[100]);
  Live->markLine(Live->lineOf(Ptrs[100]), 2);
  F.Allocator->retire();
  F.Space->sweep(2);
  ASSERT_EQ(Live->state(), BlockState::Recyclable);

  Live->setEvacuating(true);
  // Mid-evacuation probes must skip it without losing it.
  EXPECT_EQ(F.Space->takeRecyclable(), nullptr);
  Hole H;
  EXPECT_EQ(F.Space->takeRecyclableFitting(1, 2, 2, H), nullptr);
  // Evacuation ends; the block must be allocatable again with no
  // intervening sweep.
  F.Space->clearDefragCandidates();
  EXPECT_EQ(F.Space->takeRecyclable(), Live);
}

TEST(ImmixSpaceTest, EvacuatingFreeBlockIsReinstatedAfterProbe) {
  SpaceFixture F(0.0, /*Pages=*/16); // Two blocks, no room to grow.
  while (F.Allocator->alloc(1024))
    ;
  F.Allocator->retire();
  ImmixSweepTotals Totals = F.Space->sweep(2);
  ASSERT_EQ(Totals.FreeBlocks, 2u);
  std::vector<Block *> Free;
  F.Space->forEachBlock([&](Block &B) {
    B.setEvacuating(true);
    Free.push_back(&B);
  });
  // All free blocks evacuating and the budget exhausted: no block.
  EXPECT_EQ(F.Space->takeFree(), nullptr);
  F.Space->clearDefragCandidates();
  // Both blocks must still be reachable through the free list.
  EXPECT_NE(F.Space->takeFree(), nullptr);
  EXPECT_NE(F.Space->takeFree(), nullptr);
}

TEST(ImmixSpaceTest, FittingProbeReusesHoleCursor) {
  SpaceFixture F(0.0, /*Pages=*/64);
  std::vector<uint8_t *> Ptrs;
  for (int I = 0; I != 2000; ++I) {
    uint8_t *Mem = F.Allocator->alloc(64);
    if (!Mem)
      break;
    Ptrs.push_back(Mem);
  }
  // Fragment one block: every fourth line live -> max hole of 3 lines.
  Block *Frag = F.Space->blockOf(Ptrs[100]);
  for (unsigned Line = 0; Line < Frag->lineCount(); Line += 4)
    Frag->markLine(Line, 2);
  F.Allocator->retire();
  F.Space->sweep(2);
  ASSERT_EQ(Frag->state(), BlockState::Recyclable);

  Block::ScanCounters &Counters = Block::scanCounters();
  Hole H;
  // First oversized probe scans the block once and records futility.
  Counters.reset();
  EXPECT_EQ(F.Space->takeRecyclableFitting(8, 2, 2, H), nullptr);
  uint64_t FirstProbeSteps = Counters.WordSteps;
  EXPECT_GT(FirstProbeSteps, 0u);
  // Repeat probes at the same (or larger) need resume at the cursor and
  // do no scanning at all.
  Counters.reset();
  EXPECT_EQ(F.Space->takeRecyclableFitting(8, 2, 2, H), nullptr);
  EXPECT_EQ(F.Space->takeRecyclableFitting(9, 2, 2, H), nullptr);
  EXPECT_EQ(Counters.WordSteps, 0u);
  // A smaller request still sees the early holes.
  Block *Got = F.Space->takeRecyclableFitting(2, 2, 2, H);
  EXPECT_EQ(Got, Frag);
  EXPECT_GE(H.lines(), 2u);
}

TEST(ImmixSpaceTest, BudgetGateStopsGrowth) {
  SpaceFixture F(0.0, /*Pages=*/16); // Two blocks.
  size_t Got = 0;
  while (F.Allocator->alloc(1024))
    ++Got;
  EXPECT_EQ(F.Space->pagesHeld(), 16u);
  EXPECT_GT(Got, 50u);
}
