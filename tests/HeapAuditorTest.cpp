//===- tests/HeapAuditorTest.cpp - Cross-layer auditor tests --------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "gc/HeapAuditor.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace wearmem;

namespace {

RuntimeConfig testConfig(double FailureRate = 0.0) {
  RuntimeConfig Config;
  Config.HeapBytes = 4 * MiB;
  Config.FailureRate = FailureRate;
  Config.Seed = 0xAD17;
  return Config;
}

std::vector<Handle> populate(Runtime &Rt, size_t Bytes) {
  std::vector<Handle> Roots;
  for (size_t Allocated = 0; Allocated < Bytes; Allocated += 80) {
    Roots.push_back(Rt.allocateRooted(48, 2));
    EXPECT_NE(Roots.back().get(), nullptr);
  }
  return Roots;
}

std::string firstViolation(const AuditReport &Report) {
  return Report.Violations.empty() ? std::string() : Report.Violations[0];
}

} // namespace

TEST(HeapAuditorTest, CleanHeapPasses) {
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB);
  Rt.collect(true);

  HeapAuditor Auditor(Rt.heap());
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << firstViolation(Report);
  EXPECT_GT(Report.ObjectsVisited, 0u);
  EXPECT_GT(Report.BlocksChecked, 0u);
}

TEST(HeapAuditorTest, PassesWithStaticFailures) {
  // Static intake failures exercise the word<->mark cross-check and the
  // OS budget-map comparison on every block.
  Runtime Rt(testConfig(0.25));
  auto Roots = populate(Rt, MiB);
  Rt.collect(true);

  HeapAuditor Auditor(Rt.heap());
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << firstViolation(Report);
}

TEST(HeapAuditorTest, PassesAfterDynamicFailureRecovery) {
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB);
  Rt.collect(true);

  // Fail the lines under a few live objects, then let the deferred
  // defragmenting collection recover them.
  std::vector<uint8_t *> Victims = {Roots[3].get(), Roots[99].get(),
                                    Roots[777].get()};
  Rt.heap().injectDynamicFailureBatch(Victims, /*DeferRecovery=*/true);
  EXPECT_TRUE(Rt.heap().pendingFailureRecovery());
  Rt.collect(true);
  EXPECT_FALSE(Rt.heap().pendingFailureRecovery());

  HeapAuditor Auditor(Rt.heap());
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << firstViolation(Report);
  EXPECT_GT(Report.LedgerLinesChecked, 0u);
}

TEST(HeapAuditorTest, CatchesLineStateDesync) {
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB);
  Rt.collect(true);

  // Corrupt the block layer directly: retire the line under a live
  // object *without* recording the failure in the page failure word
  // (i.e. bypass failPcmLineAt). The auditor must see both the
  // word<->mark mismatch and the live object sitting on a failed line.
  uint8_t *Obj = Roots[42].get();
  Block *B = Rt.heap().immixSpace()->blockOf(Obj);
  ASSERT_NE(B, nullptr);
  B->failLine(B->lineOf(Obj));

  HeapAuditor Auditor(Rt.heap());
  AuditReport Report = Auditor.audit();
  EXPECT_FALSE(Report.passed());
}

TEST(HeapAuditorTest, PinnedObjectsStayPutAcrossCollections) {
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB / 2);
  Handle Pinned = Rt.allocateRooted(48, 2, /*Pinned=*/true);
  uint8_t *Addr = Pinned.get();

  HeapAuditor Auditor(Rt.heap());
  Auditor.expectPinned(Addr);
  Rt.collect(true);
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << firstViolation(Report);
  // Defragmenting collections must not have moved it.
  EXPECT_EQ(Pinned.get(), Addr);

  Rt.collect(true);
  Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << firstViolation(Report);
}

namespace {

/// Drops a batch of pinned objects, collects so their lines sweep free,
/// then reallocates pinned objects of a different shape until one lands
/// on a previously watched address. Returns that address (nullptr if the
/// allocator never reused one - the caller should ASSERT).
uint8_t *reusePinnedSlot(Runtime &Rt, HeapAuditor &Auditor,
                         std::vector<Handle> &Keep, bool External) {
  std::vector<uint8_t *> Old;
  {
    std::vector<Handle> Doomed;
    for (unsigned I = 0; I != 64; ++I) {
      Doomed.push_back(Rt.allocateRooted(48, 2, /*Pinned=*/true));
      Old.push_back(Doomed.back().get());
    }
    if (External)
      for (uint8_t *Addr : Old)
        Auditor.expectPinned(Addr);
    else {
      AuditReport Seen = Auditor.audit(); // Auto-track the pins.
      EXPECT_TRUE(Seen.passed()) << firstViolation(Seen);
    }
  } // All dropped.
  Rt.collect(true); // Sweep frees their lines.
  for (unsigned I = 0; I != 256; ++I) {
    Keep.push_back(Rt.allocateRooted(48, 3, /*Pinned=*/true));
    uint8_t *Addr = Keep.back().get();
    if (std::find(Old.begin(), Old.end(), Addr) != Old.end())
      return Addr;
  }
  return nullptr;
}

} // namespace

TEST(HeapAuditorTest, PinnedSlotReuseAcrossCollectionIsNotAMove) {
  // An auto-tracked pinned object can die, have its line swept free,
  // and the slot handed to a fresh pinned allocation before the next
  // audit runs (deferred recovery skips the between-GC audits in soak
  // mode, and SATB cycles shift reuse into exactly such gaps). With a
  // collection in between, the changed stamp is legitimate reuse, not
  // evidence of a moved pin.
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB / 2);
  HeapAuditor Auditor(Rt.heap());
  std::vector<Handle> Keep;
  uint8_t *Addr = reusePinnedSlot(Rt, Auditor, Keep, /*External=*/false);
  ASSERT_NE(Addr, nullptr) << "allocator never reused a watched slot";
  AuditReport Report = Auditor.audit();
  EXPECT_TRUE(Report.passed()) << firstViolation(Report);
}

TEST(HeapAuditorTest, ExternalPinSlotReuseStillFlags) {
  // Native code holds the registered address, so reuse after death is
  // exactly as much a violation as the object vanishing: either the
  // stamp mismatch or the lost registration must surface.
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB / 2);
  HeapAuditor Auditor(Rt.heap());
  std::vector<Handle> Keep;
  uint8_t *Addr = reusePinnedSlot(Rt, Auditor, Keep, /*External=*/true);
  ASSERT_NE(Addr, nullptr) << "allocator never reused a watched slot";
  AuditReport Report = Auditor.audit();
  EXPECT_FALSE(Report.passed());
}

TEST(HeapAuditorTest, FlagsVanishedExternalPin) {
  Runtime Rt(testConfig());
  auto Roots = populate(Rt, MiB / 2);

  HeapAuditor Auditor(Rt.heap());
  {
    // An external observer registers the pin, then the object dies: the
    // next audit must flag the dangling expectation (native code still
    // holds the address).
    Handle Pinned = Rt.allocateRooted(48, 2, /*Pinned=*/true);
    Auditor.expectPinned(Pinned.get());
    AuditReport Alive = Auditor.audit();
    EXPECT_TRUE(Alive.passed()) << firstViolation(Alive);
  }
  Rt.collect(true);

  AuditReport Report = Auditor.audit();
  EXPECT_FALSE(Report.passed());
}
