//===- tests/DiscontiguousArrayTest.cpp - Arraylet array tests ------------===//
//
// Part of the wearmem project, a reproduction of "Using Managed Runtime
// Systems to Tolerate Holes in Wearable Memories" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/DiscontiguousArray.h"
#include "workload/Runner.h"

#include <gtest/gtest.h>

#include <vector>

using namespace wearmem;

namespace {
RuntimeConfig arrayConfig(double Rate, unsigned ClusterPages) {
  RuntimeConfig Config;
  Config.HeapBytes = 12 * MiB;
  Config.FailureRate = Rate;
  Config.ClusteringRegionPages = ClusterPages;
  return Config;
}
} // namespace

TEST(DiscontiguousArrayTest, RoundTrip) {
  Runtime Rt(arrayConfig(0.0, 0));
  constexpr size_t Size = 100 * 1000;
  ObjRef Spine = allocateDiscontiguousArray(Rt, Size);
  ASSERT_NE(Spine, nullptr);
  Handle Root(Rt, Spine);
  EXPECT_TRUE(isDiscontiguousArray(Root.get()));
  EXPECT_EQ(discontiguousArrayBytes(Root.get()), Size);
  EXPECT_EQ(discontiguousArrayletBytes(Root.get()),
            DefaultArrayletBytes);

  std::vector<uint8_t> Data(Size);
  for (size_t I = 0; I != Size; ++I)
    Data[I] = static_cast<uint8_t>(I * 31 + 7);
  copyToDiscontiguous(Root.get(), 0, Data.data(), Size);

  std::vector<uint8_t> Back(Size);
  copyFromDiscontiguous(Root.get(), 0, Back.data(), Size);
  EXPECT_EQ(Data, Back);
  EXPECT_EQ(readDiscontiguousByte(Root.get(), 12345), Data[12345]);
}

TEST(DiscontiguousArrayTest, UnalignedRangesCrossArraylets) {
  Runtime Rt(arrayConfig(0.0, 0));
  ObjRef Spine = allocateDiscontiguousArray(Rt, 3 * DefaultArrayletBytes);
  ASSERT_NE(Spine, nullptr);
  Handle Root(Rt, Spine);
  // Write a range straddling two arraylet boundaries.
  std::vector<uint8_t> Data(DefaultArrayletBytes + 100, 0x3C);
  size_t Offset = DefaultArrayletBytes - 50;
  copyToDiscontiguous(Root.get(), Offset, Data.data(), Data.size());
  for (size_t I = 0; I != Data.size(); ++I)
    ASSERT_EQ(readDiscontiguousByte(Root.get(), Offset + I), 0x3C);
  // Neighbouring bytes untouched (zero-initialized).
  EXPECT_EQ(readDiscontiguousByte(Root.get(), Offset - 1), 0);
  EXPECT_EQ(readDiscontiguousByte(Root.get(), Offset + Data.size()), 0);
}

TEST(DiscontiguousArrayTest, SurvivesMovingCollections) {
  Runtime Rt(arrayConfig(0.0, 0));
  constexpr size_t Size = 64 * KiB;
  ObjRef Spine = allocateDiscontiguousArray(Rt, Size);
  ASSERT_NE(Spine, nullptr);
  Handle Root(Rt, Spine);
  std::vector<uint8_t> Data(Size);
  for (size_t I = 0; I != Size; ++I)
    Data[I] = static_cast<uint8_t>(I ^ (I >> 8));
  copyToDiscontiguous(Root.get(), 0, Data.data(), Size);

  // Churn with a sparse retained tail: blocks end up sparsely populated,
  // which makes them defragmentation candidates, so collections really
  // move objects (including arraylets).
  std::vector<Handle> Sparse;
  for (int GC = 0; GC != 6; ++GC) {
    for (int I = 0; I != 3000; ++I) {
      ObjRef Obj = Rt.allocate(48, 1);
      ASSERT_NE(Obj, nullptr);
      if (I % 97 == 0) {
        if (Sparse.size() >= 64)
          Sparse.erase(Sparse.begin());
        Sparse.push_back(Handle(Rt, Obj));
      }
    }
    Rt.collect(GC % 2 == 0);
    std::vector<uint8_t> Back(Size);
    copyFromDiscontiguous(Root.get(), 0, Back.data(), Size);
    ASSERT_EQ(Data, Back) << "after GC " << GC;
  }
  EXPECT_GT(Rt.stats().ObjectsEvacuated, 0u);
}

TEST(DiscontiguousArrayTest, WorksAtHighFailureWithoutClustering) {
  // At 50% failures with NO clustering hardware, page-grained large
  // objects need one borrowed perfect page per data page forever; a
  // discontiguous array lives in imperfect memory (its medium arraylets
  // may still trip the overflow perfect-block fallback, but those blocks
  // are shared and reused). Steady-state churn shows the difference.
  Runtime ArrayRt(arrayConfig(0.50, 0));
  Runtime LosRt(arrayConfig(0.50, 0));
  for (int Round = 0; Round != 40; ++Round) {
    ObjRef Spine = allocateDiscontiguousArray(ArrayRt, 64 * KiB);
    ASSERT_NE(Spine, nullptr);
    Handle Root(ArrayRt, Spine);
    writeDiscontiguousByte(Root.get(), 60000, 0x77);
    ASSERT_EQ(readDiscontiguousByte(Root.get(), 60000), 0x77);

    ObjRef Big = LosRt.allocate(64 * KiB, 0);
    ASSERT_NE(Big, nullptr);
  }
  ArrayRt.collect(true);
  ArrayRt.heap().verifyIntegrity();
  // The arraylet heap borrows far fewer perfect pages than the LOS heap.
  EXPECT_LT(ArrayRt.osStats().DramBorrowed,
            LosRt.osStats().DramBorrowed / 2);
  EXPECT_EQ(ArrayRt.stats().LargeObjectAllocs, 0u);
}

TEST(DiscontiguousArrayTest, SpineStaysBelowLosThreshold) {
  Runtime Rt(arrayConfig(0.0, 0));
  size_t Max = maxDiscontiguousArrayBytes(Rt);
  EXPECT_GE(Max, 200 * KiB);
  ObjRef Spine = allocateDiscontiguousArray(Rt, Max);
  ASSERT_NE(Spine, nullptr);
  EXPECT_FALSE(objectHasFlag(Spine, FlagLarge));
}

TEST(DiscontiguousArrayTest, MutatorIntegration) {
  // eclipse has a modest large-array share; the heavily array-bound
  // xalan needs clustering or bigger heaps with arraylets because every
  // spine is a medium object hunting for a multi-line hole (see the
  // abl05 bench, where that trade-off is the point).
  const Profile *P = findProfile("eclipse");
  ASSERT_NE(P, nullptr);
  RuntimeConfig Config;
  Config.HeapBytes = heapBytesFor(*P, 2.5);
  Config.FailureRate = 0.10;
  Config.UseDiscontiguousArrays = true;
  RunResult R = runOnce(*P, Config);
  EXPECT_TRUE(R.Completed);
  // The LOS was bypassed for the workload's arrays (only the mutator's
  // own backbone spine may land there).
  EXPECT_LE(R.Stats.LargeObjectAllocs, 1u);
}
